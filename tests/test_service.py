"""Tests for the verification service (repro.service).

Covers the queue (priority bands, per-client fairness, bounded depth),
the shared result store (namespacing, LRU, persistence), the wire
protocol, resident sessions, the service lifecycle (cancel, timeout,
shed, deterministic results vs. the one-shot API), the persistent
executor seam, and a full socket round trip against an in-process
daemon.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time

import pytest

from repro import api
from repro.gdsii import write_gds
from repro.obs import MetricsRegistry, names, set_registry
from repro.parallel import AbortRun, TileCache, TileExecutor
from repro.service import (
    BadRequestError,
    DaemonUnreachableError,
    Job,
    JobState,
    Priority,
    PriorityJobQueue,
    QueueFullError,
    ResultStore,
    ServiceClient,
    ServiceClosedError,
    ServiceDaemon,
    ServiceError,
    SessionManager,
    SocketClient,
    StoreView,
    UnknownJobError,
    VerificationService,
    protocol,
)
from repro.service.session import resolve_layer


def _double(payload, item):
    return item * 2


@pytest.fixture(scope="module")
def gds_path(tmp_path_factory, small_block):
    path = tmp_path_factory.mktemp("service") / "block.gds"
    write_gds(small_block.layout, path)
    return str(path)


def _job(client="a", priority=Priority.INTERACTIVE, kind="scan"):
    return Job(client=client, kind=kind, params={}, priority=priority)


class TestPriorityJobQueue:
    def test_round_robin_across_clients_within_band(self):
        q = PriorityJobQueue()
        a1, a2, a3 = _job("a"), _job("a"), _job("a")
        b1 = _job("b")
        for job in (a1, a2, a3, b1):
            q.push(job)
        # client "a" cannot starve "b": rotation serves b's job second
        assert [q.pop(timeout=0) for _ in range(4)] == [a1, b1, a2, a3]
        assert q.pop(timeout=0) is None

    def test_strict_priority_bands(self):
        q = PriorityJobQueue()
        background = _job(priority=Priority.BACKGROUND)
        batch = _job(priority=Priority.BATCH)
        interactive = _job(priority=Priority.INTERACTIVE)
        for job in (background, batch, interactive):
            q.push(job)
        assert q.pop(timeout=0) is interactive
        assert q.pop(timeout=0) is batch
        assert q.pop(timeout=0) is background

    def test_bounded_depth_sheds(self):
        q = PriorityJobQueue(max_depth=2)
        q.push(_job())
        q.push(_job())
        with pytest.raises(QueueFullError):
            q.push(_job())
        assert len(q) == 2

    def test_remove_queued_job(self):
        q = PriorityJobQueue()
        job = _job()
        q.push(job)
        assert q.remove(job.id) is job
        assert q.remove(job.id) is None
        assert len(q) == 0

    def test_closed_queue_refuses_push_and_drains(self):
        q = PriorityJobQueue()
        job = _job()
        q.push(job)
        q.close()
        with pytest.raises(ServiceClosedError):
            q.push(_job())
        assert q.pop(timeout=0) is job  # already-queued work still drains
        assert q.pop(timeout=0) is None

    def test_snapshot_counts_per_band(self):
        q = PriorityJobQueue()
        q.push(_job(priority=Priority.BATCH))
        q.push(_job(priority=Priority.BATCH))
        q.push(_job(priority=Priority.INTERACTIVE))
        assert q.snapshot() == {"interactive": 1, "batch": 2, "background": 0}


class TestPriority:
    def test_from_name_accepts_str_int_enum(self):
        assert Priority.from_name("batch") is Priority.BATCH
        assert Priority.from_name(" Interactive ") is Priority.INTERACTIVE
        assert Priority.from_name(2) is Priority.BACKGROUND
        assert Priority.from_name(Priority.BATCH) is Priority.BATCH

    def test_unknown_priority_is_typed_error(self):
        with pytest.raises(BadRequestError):
            Priority.from_name("urgent")


class TestResultStore:
    def test_hit_miss_counters_and_namespacing(self):
        store = ResultStore()
        ns_a = store.namespace("scan", "1.0", 45)
        ns_b = store.namespace("scan", "1.0", 65)
        assert ns_a != ns_b
        assert store.get(ns_a, "k") is None
        store.put(ns_a, "k", {"v": 1})
        assert store.get(ns_a, "k") == {"v": 1}
        assert store.get(ns_b, "k") is None  # other namespace cannot collide
        assert (store.hits, store.misses) == (1, 2)
        assert store.hit_rate == pytest.approx(1 / 3)

    def test_lru_eviction(self):
        store = ResultStore(max_entries=2)
        store.put("ns", "a", 1)
        store.put("ns", "b", 2)
        assert store.get("ns", "a") == 1  # refresh: "b" is now oldest
        store.put("ns", "c", 3)
        assert store.get("ns", "b") is None
        assert store.get("ns", "a") == 1
        assert store.evictions == 1

    def test_view_is_a_tile_cache_over_the_shared_store(self):
        store = ResultStore()
        ns = store.namespace("drc", "1.0")
        view = store.view(ns)
        assert isinstance(view, (TileCache, StoreView))
        view.put("tile", "result")
        other_run = store.view(ns)
        assert other_run.get("tile") == "result"  # cross-run reuse
        assert (other_run.hits, other_run.misses) == (1, 0)
        assert store.view(store.namespace("drc", "2.0")).get("tile") is None

    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore()
        store.put("ns", "k", [1, 2, 3])
        path = tmp_path / "store.pkl"
        store.save(path)
        loaded = ResultStore.load(path)
        assert loaded.get("ns", "k") == [1, 2, 3]

    def test_load_missing_or_corrupt_is_cold_start(self, tmp_path):
        assert len(ResultStore.load(tmp_path / "absent.pkl")) == 0
        corrupt = tmp_path / "corrupt.pkl"
        corrupt.write_bytes(b"not a pickle")
        assert len(ResultStore.load(corrupt)) == 0

    def test_load_rejects_format_mismatch(self, tmp_path):
        path = tmp_path / "old.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"format": "resultstore-v0", "entries": {"a:b": 1}}, fh)
        loaded = ResultStore.load(path)
        assert len(loaded) == 0  # never serve entries from another format


class TestProtocol:
    def test_encode_decode_round_trip(self):
        line = protocol.encode({"op": "ping"})
        assert line.endswith(b"\n")
        message = protocol.decode(line)
        assert message["op"] == "ping"
        assert message["schema"] == protocol.SCHEMA

    def test_encode_does_not_mutate_caller_dict(self):
        # clients retain (and may resend or log) the message dict; the
        # schema stamp must land on a copy, not leak back into it
        message = {"op": "submit", "params": {"gds": "chip.gds"}}
        retained = dict(message)
        line = protocol.encode(message)
        assert message == retained
        assert protocol.decode(line)["schema"] == protocol.SCHEMA

    def test_error_codes_come_from_registry(self):
        # every typed exception's code is a registry constant, and the
        # registry enumerates exactly the codes the wire can carry
        from repro.service import errors
        from repro.service.client import DaemonUnreachableError

        assert ServiceError.code == errors.SERVICE_ERROR
        assert DaemonUnreachableError.code == errors.UNREACHABLE
        assert BadRequestError.code in errors.all_codes()
        assert len(set(errors.all_codes())) == len(errors.all_codes())

    def test_decode_rejects_bad_input(self):
        with pytest.raises(BadRequestError):
            protocol.decode(b"not json\n")
        with pytest.raises(BadRequestError):
            protocol.decode(b"[1,2]\n")
        with pytest.raises(BadRequestError):
            protocol.decode(b'{"schema": "other-v9", "op": "ping"}\n')
        with pytest.raises(BadRequestError):
            protocol.decode(b"x" * (protocol.MAX_LINE_BYTES + 1))


class TestSessions:
    def test_resolve_layer(self, tech45):
        assert resolve_layer(tech45, "M1").name == "M1"
        with pytest.raises(BadRequestError):
            resolve_layer(tech45, "M99")

    def test_session_reuse_and_stat_based_reload(self, gds_path):
        manager = SessionManager()
        first = manager.get(gds_path)
        assert manager.get(gds_path) is first  # warm: same resident session
        st = os.stat(gds_path)
        os.utime(gds_path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        reloaded = manager.get(gds_path)
        assert reloaded is not first  # edited file gets a fresh session
        manager.close()

    def test_lru_bound_evicts_oldest_session(self, gds_path, tmp_path, small_block):
        other = tmp_path / "other.gds"
        write_gds(small_block.layout, other)
        manager = SessionManager(max_sessions=1)
        first = manager.get(gds_path)
        manager.get(str(other))
        assert manager.get(gds_path) is not first  # was evicted, reloaded
        manager.close()

    def test_missing_file_is_typed_error(self):
        with pytest.raises(BadRequestError):
            SessionManager().get("/nonexistent/layout.gds")

    def test_unknown_cell_is_typed_error(self, gds_path):
        manager = SessionManager()
        session = manager.get(gds_path)
        with pytest.raises(BadRequestError):
            session.cell("NOPE")
        manager.close()


class TestServiceLifecycle:
    def test_scan_job_and_store_reuse_on_resubmit(self, gds_path):
        with VerificationService(jobs=1) as service:
            client = ServiceClient(service, client="alice")
            job = client.run("scan", {"gds": gds_path, "tile": 2000})
            assert job.state is JobState.DONE
            result = job.result
            assert result["tiles"] > 1
            assert result["tiles_cached"] == 0
            assert result["findings"] == len(job.report.hotspots)
            # a second client's identical request is served from the store
            again = ServiceClient(service, client="bob").run(
                "scan", {"gds": gds_path, "tile": 2000}
            )
            assert again.state is JobState.DONE
            assert again.result["tiles_cached"] == again.result["tiles"]
            assert again.result["findings"] == result["findings"]
            assert service.store.hits >= again.result["tiles"]

    def test_served_scan_is_bit_identical_to_oneshot_api(
        self, gds_path, tech45, small_block
    ):
        with VerificationService(jobs=1) as service:
            job = ServiceClient(service).run(
                "scan", {"gds": gds_path, "tile": 2000, "limit": 10_000}
            )
            assert job.state is JobState.DONE
            cell = small_block.layout.top_cell()
            region = cell.region(resolve_layer(tech45, "M1"))
            direct = api.scan_full_chip(
                tech45,
                region,
                tile_nm=2000,
                pinch_limit=tech45.metal_width // 2,
            )
            assert [str(h) for h in job.report.hotspots] == [
                str(h) for h in direct.hotspots
            ]
            assert job.result["listing"] == [str(h) for h in direct.hotspots]

    def test_drc_job_reuses_store_on_resubmit(self, gds_path):
        with VerificationService(jobs=1) as service:
            client = ServiceClient(service)
            first = client.run("drc", {"gds": gds_path, "tile": 2000})
            assert first.state is JobState.DONE
            second = client.run("drc", {"gds": gds_path, "tile": 2000})
            assert second.result["tiles_cached"] == second.result["tiles"]
            assert second.result["findings"] == first.result["findings"]

    def test_node_change_misses_the_store(self, gds_path):
        # the namespace digests engine version + node + deck signature,
        # so a different node can never hit another node's entries
        with VerificationService(jobs=1) as service:
            client = ServiceClient(service)
            client.run("scan", {"gds": gds_path, "tile": 2000})
            other = client.run("scan", {"gds": gds_path, "tile": 2000, "node": 65})
            assert other.state is JobState.DONE
            assert other.result["tiles_cached"] == 0

    def test_priority_orders_dispatch(self, gds_path):
        service = VerificationService(jobs=1, autostart=False)
        try:
            params = {"gds": gds_path, "tile": 2000}
            background = service.submit(
                "scan", params, priority="background", client="a"
            )
            batch = service.submit("scan", params, priority="batch", client="b")
            interactive = service.submit(
                "scan", params, priority="interactive", client="c"
            )
            service.start()
            for job in (background, batch, interactive):
                assert service.wait(job, timeout=120).state is JobState.DONE
            assert (
                interactive.started_monotonic
                < batch.started_monotonic
                < background.started_monotonic
            )
        finally:
            service.close()

    def test_cancel_while_queued(self, gds_path):
        service = VerificationService(jobs=1, autostart=False)
        try:
            job = service.submit("scan", {"gds": gds_path}, client="a")
            snapshot = service.cancel(job.id)
            assert snapshot["state"] == "cancelled"
            assert job.state is JobState.CANCELLED
            assert service.counters["cancelled"] == 1
        finally:
            service.close()

    def test_cancel_mid_run_aborts_at_tile_boundary(self, gds_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "tile:0:hang:0.6")
        with VerificationService(jobs=1) as service:
            job = service.submit("scan", {"gds": gds_path, "tile": 2000})
            deadline = time.monotonic() + 30
            while job.state is not JobState.RUNNING:
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.01)
            time.sleep(0.1)  # let it enter the hanging tile
            service.cancel(job.id)
            service.wait(job, timeout=30)
            assert job.state is JobState.CANCELLED
            assert "cancelled" in job.error

    def test_timeout_moves_job_to_timeout_state(self, gds_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "tile:0:hang:0.5")
        with VerificationService(jobs=1) as service:
            job = service.submit(
                "scan", {"gds": gds_path, "tile": 2000}, timeout_s=0.05
            )
            service.wait(job, timeout=30)
            assert job.state is JobState.TIMEOUT
            assert "timed out" in job.error
            assert service.counters["timeout"] == 1

    def test_shed_and_close_cancels_queued(self, gds_path):
        service = VerificationService(jobs=1, max_depth=1, autostart=False)
        queued = service.submit("scan", {"gds": gds_path}, client="a")
        with pytest.raises(QueueFullError):
            service.submit("scan", {"gds": gds_path}, client="b")
        assert service.counters["shed"] == 1
        service.close()
        assert queued.state is JobState.CANCELLED
        with pytest.raises(ServiceClosedError):
            service.submit("scan", {"gds": gds_path})

    def test_bad_requests_are_typed(self, gds_path):
        with VerificationService(jobs=1) as service:
            with pytest.raises(BadRequestError):
                service.submit("lint", {"gds": gds_path})
            with pytest.raises(UnknownJobError):
                service.job(10**9)
            # parameter problems surface on the job, not the dispatcher
            job = service.wait(service.submit("scan", {}), timeout=30)
            assert job.state is JobState.FAILED
            assert "bad-request" in job.error
            missing = service.wait(
                service.submit("scan", {"gds": "/nonexistent.gds"}), timeout=30
            )
            assert missing.state is JobState.FAILED

    def test_metrics_shape(self, gds_path):
        with VerificationService(jobs=1) as service:
            ServiceClient(service).run("scan", {"gds": gds_path, "tile": 2000})
            metrics = service.metrics()
            assert metrics["jobs"]["completed"] == 1
            assert metrics["queue"]["depth"] == 0
            assert metrics["store"]["misses"] > 0
            assert metrics["latency_ms"]["count"] == 1
            assert metrics["latency_ms"]["p50"] > 0


class TestPersistentExecutor:
    def test_warm_pool_reuse_and_context_manager(self):
        fresh = MetricsRegistry(enabled=True)
        previous = set_registry(fresh)
        try:
            with TileExecutor(2, persistent=True) as executor:
                first = executor.run(_double, ("payload",), [1, 2, 3, 4])
                pool = executor._pool
                assert pool is not None  # kept warm between calls
                second = executor.run(_double, ("payload",), [5, 6])
                assert executor._pool is pool
                assert first.results == [2, 4, 6, 8]
                assert second.results == [10, 12]
                assert fresh.counter(names.POOL_WARM_REUSE) == 1
            assert executor._pool is None  # context exit released it
            executor.close()  # idempotent
        finally:
            set_registry(previous)

    def test_payload_change_retires_warm_pool(self):
        with TileExecutor(2, persistent=True) as executor:
            executor.run(_double, ("a",), [1, 2])
            pool = executor._pool
            executor.run(_double, ("b",), [1, 2])
            assert executor._pool is not pool

    def test_preset_cancel_event_aborts_run(self):
        executor = TileExecutor(1)
        executor.cancel_event = threading.Event()
        executor.cancel_event.set()
        with pytest.raises(AbortRun):
            executor.run(_double, None, [1, 2, 3])


class TestDaemonSocket:
    def test_full_round_trip(self, gds_path, tmp_path):
        state_file = str(tmp_path / "svc.json")
        daemon = ServiceDaemon(
            VerificationService(jobs=1), state_file=state_file
        )
        thread = threading.Thread(target=daemon.serve_until_shutdown, daemon=True)
        thread.start()
        try:
            client = SocketClient.from_state_file(path=state_file)
            pong = client.ping()
            assert pong["pong"] and pong["version"]
            job = client.submit(
                "scan", {"gds": gds_path, "tile": 2000}, client="sock"
            )
            assert job["state"] == "done"
            assert job["result"]["tiles"] > 1
            assert client.status(job["id"])["state"] == "done"
            with pytest.raises(UnknownJobError):
                client.status(10**9)
            with pytest.raises(BadRequestError):
                client.request("frobnicate")
            with pytest.raises(BadRequestError):
                client.request("submit", kind="scan", params=[1, 2])
            metrics = client.metrics()
            assert metrics["jobs"]["completed"] == 1
            client.shutdown()
        finally:
            thread.join(timeout=60)
        assert not thread.is_alive()
        assert not os.path.exists(state_file)  # clean shutdown removes it

    def test_unreachable_daemon_is_typed(self, tmp_path):
        with pytest.raises(DaemonUnreachableError):
            SocketClient.from_state_file(path=str(tmp_path / "absent.json"))
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(DaemonUnreachableError):
            SocketClient("127.0.0.1", port, timeout=2.0).ping()

    def test_error_codes_round_trip_as_exception_types(self):
        for exc_type in (
            ServiceError,
            QueueFullError,
            UnknownJobError,
            BadRequestError,
            ServiceClosedError,
        ):
            wire = protocol.error_response(exc_type("boom"))["error"]
            from repro.service.client import raise_for_error

            with pytest.raises(exc_type):
                raise_for_error(wire)


class TestMakeService:
    def test_api_make_service(self, gds_path):
        with api.make_service(jobs=1) as service:
            job = ServiceClient(service).run("scan", {"gds": gds_path, "tile": 2000})
            assert job.state is JobState.DONE
