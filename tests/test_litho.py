"""Unit tests for the litho stack: rasterization, aerial image physics,
CD metrology, process windows, and hotspot detection."""

import numpy as np
import pytest

from repro.geometry import Point, Rect, Region
from repro.litho import (
    Cutline,
    HotspotKind,
    ProcessCondition,
    ProcessWindow,
    find_hotspots,
    measure_cd,
    pv_bands,
    raster_to_region,
    rasterize,
    simulate,
)
from repro.litho.cd import line_end_pullback, measure_space, subpixel_cd
from repro.litho.process import pv_band_area


class TestRaster:
    def test_full_pixel_coverage(self):
        img = rasterize(Region(Rect(0, 0, 10, 10)), Rect(0, 0, 10, 10), 5)
        assert img.shape == (2, 2)
        assert np.allclose(img, 1.0)

    def test_fractional_coverage(self):
        img = rasterize(Region(Rect(0, 0, 5, 10)), Rect(0, 0, 10, 10), 10)
        assert img.shape == (1, 1)
        assert img[0, 0] == pytest.approx(0.5)

    def test_subpixel_rect(self):
        img = rasterize(Region(Rect(2, 2, 4, 4)), Rect(0, 0, 10, 10), 10)
        assert img[0, 0] == pytest.approx(0.04)

    def test_area_conservation(self):
        region = Region([Rect(3, 7, 47, 23), Rect(60, 0, 95, 55)])
        window = Rect(0, 0, 100, 60)
        img = rasterize(region, window, 7)
        # sum of coverage * pixel area equals geometric area (interior window)
        assert img.sum() * 49 == pytest.approx(region.area, rel=0.02)

    def test_clipping_outside(self):
        img = rasterize(Region(Rect(-100, -100, -50, -50)), Rect(0, 0, 10, 10), 5)
        assert img.sum() == 0

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            rasterize(Region(), Rect(0, 0, 10, 10), 0)

    def test_raster_to_region_roundtrip(self):
        region = Region([Rect(0, 0, 20, 10), Rect(40, 0, 60, 10)])
        window = Rect(0, 0, 100, 20)
        mask = rasterize(region, window, 5) >= 0.5
        back = raster_to_region(mask, window, 5)
        assert back == region


class TestAerialImage:
    def test_clear_field_prints_one(self, litho45):
        big = Region(Rect(-2000, -2000, 2000, 2000))
        image = litho45.aerial_image(big, Rect(-100, -100, 100, 100))
        assert image.mean() == pytest.approx(1.0, abs=0.02)

    def test_empty_field_zero(self, litho45):
        image = litho45.aerial_image(Region(), Rect(0, 0, 100, 100))
        assert np.allclose(image, 0.0)

    def test_straight_edge_at_half(self, litho45):
        # a long straight edge images at intensity 0.5 exactly at the edge
        half_plane = Region(Rect(-5000, -5000, 0, 5000))
        image = litho45.aerial_image(half_plane, Rect(-20, -20, 20, 20), grid=2)
        mid_col = image[:, image.shape[1] // 2]
        # the pixel at x=0 straddles the edge
        assert 0.4 < mid_col.mean() < 0.6

    def test_dose_scales_threshold(self, litho45):
        line = Region(Rect(0, 0, 45, 2000))
        cut = Cutline(Point(22, 1000))
        cd_low = litho45.measure_cd(line, cut, dose=0.9)
        cd_nom = litho45.measure_cd(line, cut, dose=1.0)
        cd_high = litho45.measure_cd(line, cut, dose=1.1)
        assert cd_low < cd_nom < cd_high

    def test_defocus_blurs(self, litho45):
        assert litho45.blur_sigma_nm(100) > litho45.blur_sigma_nm(0)

    def test_iso_dense_bias(self, litho45):
        dense = Region([Rect(x, 0, x + 45, 2000) for x in range(0, 1800, 90)])
        iso = Region(Rect(900, 0, 945, 2000))
        cut = Cutline(Point(922, 1000))
        cd_dense = litho45.measure_cd(dense, cut)
        cd_iso = litho45.measure_cd(iso, cut)
        assert abs(cd_dense - 45) < 3  # dense anchored near target
        assert cd_iso > cd_dense  # flare prints isolated lines fat

    def test_print_contour_region(self, litho45):
        line = Region(Rect(0, 0, 100, 1000))
        printed = litho45.print_contour(line, Rect(-100, 400, 200, 600))
        assert not printed.is_empty
        assert printed.bbox.width == pytest.approx(100, abs=15)

    def test_simulate_convenience(self, tech45):
        printed = simulate(Region(Rect(0, 0, 100, 500)), Rect(-50, 200, 150, 300), tech45.litho)
        assert not printed.is_empty

    def test_invalid_dose(self, litho45):
        with pytest.raises(ValueError):
            litho45.print_image(Region(), Rect(0, 0, 10, 10), dose=0)


class TestCdMetrology:
    region = Region([Rect(0, 0, 45, 1000), Rect(145, 0, 190, 1000)])

    def test_measure_cd(self):
        assert measure_cd(self.region, Cutline(Point(22, 500))) == 45

    def test_measure_cd_missing(self):
        assert measure_cd(Region(), Cutline(Point(0, 0))) == 0

    def test_measure_cd_nearest_span(self):
        # cut point in the gap: returns nearest feature's width
        assert measure_cd(self.region, Cutline(Point(100, 500))) == 45

    def test_measure_space(self):
        assert measure_space(self.region, Cutline(Point(100, 500))) == 100
        assert measure_space(self.region, Cutline(Point(22, 500))) == 0

    def test_vertical_cut(self):
        region = Region(Rect(0, 0, 1000, 45))
        assert measure_cd(region, Cutline(Point(500, 22), horizontal=False)) == 45

    def test_pullback(self, litho45):
        line = Region(Rect(0, 200, 45, 800))
        printed = litho45.print_contour(line, Rect(-100, 100, 145, 900))
        pb = line_end_pullback(printed, line, Cutline(Point(22, 500), horizontal=False))
        assert 0 < pb < 30

    def test_pullback_vanished_line(self):
        line = Region(Rect(0, 0, 45, 100))
        assert line_end_pullback(Region(), line, Cutline(Point(22, 50), horizontal=False)) == 100

    def test_subpixel_cd_precision(self, litho45):
        line = Region(Rect(0, 0, 45, 2000))
        window = Rect(-200, 900, 245, 1100)
        image = litho45.aerial_image(line, window, grid=4)
        cd = subpixel_cd(image, window, 4, Cutline(Point(22, 1000)), 0.5)
        assert cd == pytest.approx(45, abs=8)

    def test_subpixel_cd_not_printing(self, litho45):
        window = Rect(-100, -100, 100, 100)
        image = litho45.aerial_image(Region(), window, grid=4)
        assert subpixel_cd(image, window, 4, Cutline(Point(0, 0)), 0.5) == 0.0


class TestProcessWindow:
    def test_corners(self):
        pw = ProcessWindow(0.95, 1.05, 80)
        corners = pw.corners()
        assert len(corners) == 5
        assert ProcessCondition(1.0, 0.0) in corners

    def test_grid(self):
        pw = ProcessWindow()
        points = list(pw.grid(3, 2))
        assert len(points) == 6

    def test_pv_bands_ordering(self, litho45):
        mask = Region(Rect(0, 0, 60, 2000))
        window = Rect(-150, 800, 210, 1200)
        inner, outer = pv_bands(litho45, mask, window, grid=2)
        assert outer.covers(inner)
        assert (outer - inner).area > 0

    def test_pv_band_area_smaller_for_wider_line(self, litho45):
        window = Rect(-200, 800, 400, 1200)
        narrow = pv_band_area(litho45, Region(Rect(0, 0, 50, 2000)), window, grid=2)
        wide = pv_band_area(litho45, Region(Rect(0, 0, 200, 2000)), window, grid=2)
        # PV band scales with perimeter, roughly equal here; but the
        # narrow line's relative variability dominates: compare per-area
        assert narrow / 50 >= wide / 200


class TestHotspots:
    def test_tight_gap_bridges(self, litho45):
        region = Region([Rect(0, 0, 100, 500), Rect(0, 522, 100, 1000)])
        hotspots = find_hotspots(litho45, region, Rect(-100, -100, 200, 1100))
        kinds = {h.kind for h in hotspots}
        assert HotspotKind.BRIDGE in kinds

    def test_line_ends_pinch(self, litho45):
        region = Region([Rect(0, 0, 45, 500), Rect(0, 560, 45, 1000)])
        hotspots = find_hotspots(litho45, region, Rect(-100, -100, 200, 1100))
        assert hotspots
        assert all(h.kind is HotspotKind.PINCH for h in hotspots)

    def test_clean_wide_pattern(self, litho45):
        region = Region(Rect(0, 0, 400, 2000))
        hotspots = find_hotspots(litho45, region, Rect(-100, 500, 500, 1500))
        assert hotspots == []

    def test_missing_feature(self, litho45):
        # a tiny isolated speck fails to print at all
        region = Region(Rect(0, 0, 12, 12))
        hotspots = find_hotspots(
            litho45, region, Rect(-150, -150, 150, 150), pinch_limit=4
        )
        assert any(h.kind is HotspotKind.MISSING for h in hotspots)

    def test_empty_window(self, litho45):
        assert find_hotspots(litho45, Region(), Rect(0, 0, 100, 100)) == []

    def test_mask_parameter(self, litho45):
        drawn = Region([Rect(0, 0, 45, 400), Rect(0, 445, 45, 800)])
        window = Rect(-100, -100, 150, 900)
        base = find_hotspots(litho45, drawn, window)
        ext = Region([Rect(0, 400, 45, 408), Rect(0, 437, 45, 445)])
        fixed = find_hotspots(litho45, drawn, window, mask=drawn | ext)
        assert len(fixed) < len(base)

    def test_severity_ordering(self, litho45):
        region = Region([Rect(0, 0, 100, 500), Rect(0, 522, 100, 1000)])
        hotspots = find_hotspots(litho45, region, Rect(-100, -100, 200, 1100))
        severities = [h.severity for h in hotspots]
        assert severities == sorted(severities, reverse=True)
