"""Tests for the observability layer (repro.obs).

Covers registry counter/timer semantics, span nesting, the
worker-to-parent metric merge (jobs=1 and jobs=N must report identical
counters), and manifest JSON round-tripping — plus the TileCache
persistence hardening that rides on the same PR.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    RunManifest,
    TimerStat,
    Tracer,
    get_registry,
    set_registry,
    span,
)
from repro.parallel import TileCache


@pytest.fixture
def registry():
    """A fresh enabled registry installed process-wide for the test."""
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestCounters:
    def test_inc_defaults_to_one(self, registry):
        registry.inc("a")
        registry.inc("a")
        assert registry.counter("a") == 2

    def test_inc_by_n(self, registry):
        registry.inc("a", 5)
        registry.inc("a", -2)
        assert registry.counter("a") == 3

    def test_unknown_counter_reads_zero(self, registry):
        assert registry.counter("nope") == 0

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.gauge("g", 1.0)
        reg.observe("t", 0.5)
        reg.observe_hist("h", 0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["timers"] == {}
        assert snap["histograms"] == {}

    def test_reset_clears_data_keeps_enabled(self, registry):
        registry.inc("a")
        registry.reset()
        assert registry.counter("a") == 0
        assert registry.enabled


class TestTimers:
    def test_observe_aggregates(self, registry):
        for seconds in (0.2, 0.1, 0.4):
            registry.observe("t", seconds)
        stat = registry.timer_stat("t")
        assert stat.count == 3
        assert stat.total == pytest.approx(0.7)
        assert stat.min == pytest.approx(0.1)
        assert stat.max == pytest.approx(0.4)
        assert stat.mean == pytest.approx(0.7 / 3)

    def test_timer_context_manager_times_body(self, registry):
        with registry.timer("t"):
            pass
        stat = registry.timer_stat("t")
        assert stat.count == 1
        assert stat.total >= 0.0

    def test_disabled_timer_is_noop_singleton(self):
        reg = MetricsRegistry()
        t1 = reg.timer("a")
        t2 = reg.timer("b")
        assert t1 is t2  # the shared null timer: no allocation when off
        with t1:
            pass
        assert reg.snapshot()["timers"] == {}

    def test_timerstat_merge(self):
        a = TimerStat()
        a.observe(0.1)
        a.observe(0.3)
        b = TimerStat()
        b.observe(0.05)
        a.merge(b)
        assert a.count == 3
        assert a.min == pytest.approx(0.05)
        assert a.max == pytest.approx(0.3)
        assert a.total == pytest.approx(0.45)


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self, registry):
        registry.gauge("g", 1.0)
        registry.gauge("g", 7.5)
        assert registry.gauge_value("g") == 7.5

    def test_histogram_buckets(self):
        hist = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 2.0, 100.0):
            hist.observe(value)
        # bounds are upper-inclusive; the extra bucket is the overflow
        assert hist.counts == [2, 1, 1]

    def test_histogram_via_registry(self, registry):
        registry.observe_hist("h", 0.5, bounds=(1.0, 10.0))
        registry.observe_hist("h", 5.0, bounds=(1.0, 10.0))
        snap = registry.snapshot()["histograms"]["h"]
        assert snap["counts"] == [1, 1, 0]


class TestSnapshotMerge:
    def test_snapshot_is_json_able_and_sorted(self, registry):
        registry.inc("b")
        registry.inc("a")
        registry.observe("t", 0.1)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a", "b"]

    def test_merge_adds_counters_and_timers(self, registry):
        registry.inc("a", 2)
        registry.observe("t", 0.2)
        other = MetricsRegistry(enabled=True)
        other.inc("a", 3)
        other.inc("b")
        other.observe("t", 0.1)
        registry.merge(other.snapshot())
        assert registry.counter("a") == 5
        assert registry.counter("b") == 1
        stat = registry.timer_stat("t")
        assert stat.count == 2
        assert stat.min == pytest.approx(0.1)

    def test_merge_histograms_elementwise(self, registry):
        a = MetricsRegistry(enabled=True)
        a.observe_hist("h", 0.5, bounds=(1.0,))
        registry.observe_hist("h", 2.0, bounds=(1.0,))
        registry.merge(a.snapshot())
        assert registry.snapshot()["histograms"]["h"]["counts"] == [1, 1]


class TestSpans:
    def test_span_nesting_builds_tree(self, registry):
        tracer = Tracer(enabled=True)
        with span("outer", registry=registry, tracer=tracer):
            with span("inner", registry=registry, tracer=tracer):
                pass
            with span("inner2", registry=registry, tracer=tracer):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner", "inner2"]
        assert root.seconds >= sum(c.seconds for c in root.children) >= 0.0

    def test_span_records_registry_timer(self, registry):
        tracer = Tracer()  # tracing off: timers must still land
        with span("stage", registry=registry, tracer=tracer):
            pass
        assert registry.timer_stat("stage").count == 1
        assert tracer.roots == []

    def test_span_disabled_everywhere_yields_none(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        with span("stage", registry=reg, tracer=tracer) as node:
            assert node is None
        assert reg.snapshot()["timers"] == {}

    def test_render_and_to_dict(self, registry):
        tracer = Tracer(enabled=True)
        with span("a", registry=registry, tracer=tracer):
            with span("b", registry=registry, tracer=tracer):
                pass
        text = tracer.render()
        assert "a" in text and "b" in text
        tree = tracer.to_dict()
        assert tree[0]["name"] == "a"
        assert tree[0]["children"][0]["name"] == "b"


class TestWorkerMergeDeterminism:
    @pytest.fixture(scope="class")
    def scan_inputs(self, tech45, small_block):
        from repro.litho import LithoModel

        model = LithoModel(tech45.litho)
        m1 = small_block.top.region(tech45.layers.metal1)
        return model, m1, tech45.metal_width // 2

    def _counters(self, jobs, scan_inputs):
        from repro.litho import scan_full_chip

        model, m1, limit = scan_inputs
        fresh = MetricsRegistry(enabled=True)
        previous = set_registry(fresh)
        try:
            report = scan_full_chip(model, m1, tile_nm=2000, pinch_limit=limit, jobs=jobs)
        finally:
            set_registry(previous)
        return report, fresh.snapshot()

    def test_jobs4_counters_identical_to_jobs1(self, scan_inputs):
        serial_report, serial = self._counters(1, scan_inputs)
        parallel_report, parallel = self._counters(4, scan_inputs)
        assert serial["counters"] == parallel["counters"]
        assert serial["counters"]["scan.tiles_simulated"] == serial_report.tiles
        # timer event counts match too; only the seconds may differ
        assert {k: v["count"] for k, v in serial["timers"].items()} == {
            k: v["count"] for k, v in parallel["timers"].items()
        }
        assert parallel_report.hotspots == serial_report.hotspots

    def test_drc_counters_identical_across_jobs(self, tech45, small_block):
        from repro.drc import run_drc

        deck = tech45.rules.minimum()
        snaps = []
        for jobs in (1, 3):
            fresh = MetricsRegistry(enabled=True)
            previous = set_registry(fresh)
            try:
                run_drc(small_block.top, deck, jobs=jobs, tile_nm=2000)
            finally:
                set_registry(previous)
            snaps.append(fresh.snapshot()["counters"])
        assert snaps[0] == snaps[1]


class TestRunManifest:
    def test_collect_and_round_trip(self, registry):
        registry.inc("scan.tiles", 4)
        registry.observe("scan.compute", 1.25)
        tracer = Tracer(enabled=True)
        with span("scan", registry=registry, tracer=tracer):
            pass
        manifest = RunManifest.collect(
            command="scan",
            argv=["scan", "x.gds"],
            args={"seed": 7, "jobs": 2, "func": print},
            registry=registry,
            tracer=tracer,
            elapsed_seconds=2.0,
            workers=2,
        )
        assert manifest.seed == 7
        assert manifest.workers == 2
        assert "func" not in manifest.args
        assert manifest.counters["scan.tiles"] == 4
        assert manifest.trace[0]["name"] == "scan"

        back = RunManifest.from_json(manifest.to_json())
        assert back.to_dict() == manifest.to_dict()

    def test_write_creates_parents_and_loads(self, registry, tmp_path):
        manifest = RunManifest.collect(command="drc", registry=registry)
        target = tmp_path / "runs" / "deep" / "m.json"
        manifest.write(target)
        assert target.exists()
        assert RunManifest.load(target).command == "drc"
        # atomic write leaves no temp droppings behind
        assert list(target.parent.iterdir()) == [target]

    def test_non_jsonable_args_are_stringified(self, registry):
        manifest = RunManifest.collect(
            command="x", args={"obj": object()}, registry=registry
        )
        json.dumps(manifest.to_dict())  # must not raise


class TestTileCachePersistence:
    def test_save_creates_parent_directory(self, tmp_path):
        cache = TileCache()
        cache.put("k", [1, 2])
        target = tmp_path / "runs" / "nested" / "cache.pkl"
        cache.save(target)  # must not raise FileNotFoundError
        loaded = TileCache.load(target)
        assert loaded.get("k") == [1, 2]

    def test_save_is_atomic_no_temp_left(self, tmp_path):
        cache = TileCache()
        cache.put("k", "v")
        target = tmp_path / "cache.pkl"
        cache.save(target)
        cache.save(target)  # overwrite goes through rename too
        assert [p.name for p in tmp_path.iterdir()] == ["cache.pkl"]

    def test_truncated_file_degrades_to_empty_cache(self, tmp_path):
        target = tmp_path / "cache.pkl"
        blob = pickle.dumps({"k": "v"})
        target.write_bytes(blob[: len(blob) // 2])  # simulate a killed save
        loaded = TileCache.load(target)
        assert len(loaded) == 0

    def test_cache_counters_reach_registry(self, tmp_path):
        fresh = MetricsRegistry(enabled=True)
        previous = set_registry(fresh)
        try:
            cache = TileCache()
            cache.put("k", 1)
            assert cache.get("k") == 1
            assert cache.get("missing") is None
        finally:
            set_registry(previous)
        assert fresh.counter("tilecache.hits") == 1
        assert fresh.counter("tilecache.misses") == 1


class TestGlobalRegistryDefaultState:
    def test_global_registry_disabled_by_default(self):
        # instrumentation must be free for library users who never opt in
        assert get_registry().enabled is False

    def test_instrumented_path_records_nothing_when_disabled(self, tech45, small_block):
        from repro.litho import LithoModel, scan_full_chip

        model = LithoModel(tech45.litho)
        m1 = small_block.top.region(tech45.layers.metal1)
        before = get_registry().snapshot()
        scan_full_chip(model, m1, tile_nm=4000, pinch_limit=tech45.metal_width // 2)
        assert get_registry().snapshot() == before


def _has_os_fork() -> bool:
    return hasattr(os, "fork")


class TestObsInPool:
    def test_pool_fallback_keeps_metrics(self, monkeypatch):
        """If the pool cannot start, the serial fallback still records."""
        from repro.parallel import TileExecutor
        from repro.parallel import pool as pool_mod

        def boom(*a, **k):
            raise OSError("no semaphores here")

        monkeypatch.setattr(TileExecutor, "_make_pool", boom)
        assert pool_mod  # the fallback lives in TileExecutor now
        fresh = MetricsRegistry(enabled=True)
        previous = set_registry(fresh)
        try:
            out = TileExecutor(jobs=4).map(_count_item, None, list(range(8)))
        finally:
            set_registry(previous)
        assert out == [0, 1, 2, 3, 4, 5, 6, 7]
        assert fresh.counter("pool.items") == 8
        assert fresh.gauge_value("pool_fallback") == 1


def _count_item(payload, item):
    get_registry().inc("pool.items")
    return item
