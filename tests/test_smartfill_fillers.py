"""Tests for timing-aware smart fill and filler-cell insertion."""

from dataclasses import replace

import pytest

from repro.cmp import coupling_proxy, density_map, dummy_fill, smart_fill
from repro.designgen import (
    LogicBlockSpec,
    generate_logic_block,
    insert_fillers,
    make_filler_cell,
)
from repro.drc import run_drc
from repro.geometry import Rect, Region


@pytest.fixture(scope="module")
def fill_setup(tech45):
    settings = replace(tech45.cmp, window_nm=4000, step_nm=2000)
    extent = Rect(0, 0, 16000, 8000)
    critical = Region(Rect(0, 3800, 16000, 3845))
    other = Region([Rect(0, y, 16000, y + 45) for y in (1000, 6000)])
    return settings, extent, critical, critical | other


class TestCouplingProxy:
    def test_zero_when_far(self, fill_setup):
        _, _, critical, signal = fill_setup
        far_fill = Region(Rect(0, 7500, 1000, 7900))
        report = coupling_proxy(signal, far_fill, reach_nm=300, critical=critical)
        assert report.critical_coupling_perimeter_nm == 0

    def test_counts_adjacent_fill(self, fill_setup):
        _, _, critical, signal = fill_setup
        near_fill = Region(Rect(2000, 3900, 4000, 4100))  # 55 above the critical net
        report = coupling_proxy(signal, near_fill, reach_nm=300, critical=critical)
        assert report.critical_coupling_perimeter_nm > 1000

    def test_empty_inputs(self):
        report = coupling_proxy(Region(), Region(), 100)
        assert report.coupling_perimeter_nm == 0


class TestSmartFill:
    def test_protects_critical_nets(self, tech45, fill_setup):
        settings, extent, critical, signal = fill_setup
        normal, _ = dummy_fill(signal, extent, settings)
        smart, _ = smart_fill(signal, extent, settings, critical)
        cp_normal = coupling_proxy(signal, normal, 300, critical)
        cp_smart = coupling_proxy(signal, smart, 300, critical)
        assert cp_smart.critical_coupling_perimeter_nm < cp_normal.critical_coupling_perimeter_nm
        assert cp_smart.critical_coupling_perimeter_nm == 0

    def test_density_cost_bounded(self, tech45, fill_setup):
        settings, extent, critical, signal = fill_setup
        normal, _ = dummy_fill(signal, extent, settings)
        smart, _ = smart_fill(signal, extent, settings, critical)
        dm_normal = density_map(signal | normal, extent, settings.window_nm)
        dm_smart = density_map(signal | smart, extent, settings.window_nm)
        # smart fill gives up a little uniformity, not a lot
        assert dm_smart.range <= dm_normal.range + 0.1

    def test_fill_respects_critical_keepout(self, tech45, fill_setup):
        settings, extent, critical, signal = fill_setup
        smart, _ = smart_fill(signal, extent, settings, critical, keepout=200, critical_keepout=600)
        assert (smart & critical.grown(599)).is_empty


class TestFillers:
    def test_filler_cell_geometry(self, tech45):
        filler = make_filler_cell(tech45, 2)
        L = tech45.layers
        assert filler.bbox.width == 2 * tech45.poly_pitch
        assert filler.bbox.height == tech45.cell_height
        assert filler.region(L.poly).is_empty
        assert not filler.region(L.metal1).is_empty
        with pytest.raises(ValueError):
            make_filler_cell(tech45, 0)

    def test_insertion_fills_gaps(self, tech45):
        block = generate_logic_block(
            tech45,
            LogicBlockSpec(rows=2, row_width_nm=6000, net_count=4, seed=7, utilization=0.6),
        )
        assert block.gaps
        placed = insert_fillers(tech45, block)
        assert placed > 0
        # rails are now continuous across each row: the bottom rail of
        # row 0 forms one component spanning the row width
        L = tech45.layers
        rail = block.top.region(L.metal1) & Region(Rect(0, 0, 6000, 2 * tech45.node_nm))
        widths = [c.bbox.width for c in rail.components()]
        assert max(widths) > 0.9 * 6000

    def test_improves_density_uniformity(self, tech45):
        block = generate_logic_block(
            tech45,
            LogicBlockSpec(rows=3, row_width_nm=8000, net_count=8, seed=7, utilization=0.7),
        )
        L = tech45.layers
        bb = block.top.bbox
        before = density_map(block.top.region(L.metal1), bb, 4000)
        insert_fillers(tech45, block)
        after = density_map(block.top.region(L.metal1), bb, 4000)
        assert after.std < before.std

    def test_stays_drc_clean(self, tech45):
        block = generate_logic_block(
            tech45,
            LogicBlockSpec(rows=2, row_width_nm=5000, net_count=4, seed=11, utilization=0.6),
        )
        insert_fillers(tech45, block)
        report = run_drc(block.top, tech45.rules.minimum())
        assert report.ok, report.summary()
