"""Tests for the statistical variation engine."""

import numpy as np
import pytest

from repro.designgen import line_grating
from repro.geometry import Point
from repro.litho import Cutline
from repro.timing import Stage, TimingPath, path_delay_ps
from repro.variation import (
    CdDistribution,
    ProcessSampler,
    process_capability,
    simulate_cd_distribution,
    statistical_path_delays,
)


class TestSampler:
    def test_deterministic(self):
        sampler = ProcessSampler()
        assert sampler.sample(10, seed=3) == sampler.sample(10, seed=3)

    def test_bounds(self):
        sampler = ProcessSampler(dose_sigma=0.02, defocus_sigma_nm=40, truncate_sigma=3)
        samples = sampler.sample(500, seed=1)
        assert all(0.94 <= s.dose <= 1.06 for s in samples)
        assert all(0.0 <= s.defocus_nm <= 120.0 for s in samples)

    def test_dose_centred(self):
        samples = ProcessSampler().sample(2000, seed=2)
        doses = np.array([s.dose for s in samples])
        assert abs(doses.mean() - 1.0) < 0.005


class TestCdDistribution:
    def test_stats(self):
        dist = CdDistribution(target_nm=45, values=np.array([44.0, 45.0, 46.0]))
        assert dist.mean == pytest.approx(45.0)
        assert dist.mean_offset == pytest.approx(0.0)
        lo, hi = dist.three_sigma_band()
        assert lo < 45 < hi

    def test_simulated_distribution(self, litho45, tech45):
        dense = line_grating(tech45.metal_width, tech45.metal_pitch, 9, 2000)
        cut = Cutline(Point(4 * tech45.metal_pitch + tech45.metal_width // 2, 1000))
        dist = simulate_cd_distribution(
            litho45, dense, cut, target_nm=tech45.metal_width, n_samples=20, grid=4
        )
        assert len(dist.values) == 20
        assert abs(dist.mean - tech45.metal_width) < 5
        assert dist.std > 0

    def test_cpk_thresholds(self):
        tight = CdDistribution(45, np.random.default_rng(1).normal(45, 0.5, 300))
        loose = CdDistribution(45, np.random.default_rng(1).normal(45, 3.0, 300))
        assert process_capability(tight, 4.5) > 1.33  # capable
        assert process_capability(loose, 4.5) < 1.0   # not capable

    def test_cpk_off_centre_penalized(self):
        centred = CdDistribution(45, np.random.default_rng(2).normal(45, 1.0, 300))
        shifted = CdDistribution(45, np.random.default_rng(2).normal(48, 1.0, 300))
        assert process_capability(shifted, 4.5) < process_capability(centred, 4.5)

    def test_cpk_zero_spread(self):
        dist = CdDistribution(45, np.array([45.0, 45.0]))
        assert process_capability(dist, 1.0) == float("inf")


class TestStatTiming:
    def path(self):
        return TimingPath("P", [Stage(f"g{i}", 180, 35.0, wire_length_nm=300) for i in range(8)])

    def test_nominal_matches_deterministic(self):
        path = self.path()
        result = statistical_path_delays(path, length_sigma_nm=1.5, worst_length_nm=40.0, n_samples=50)
        assert result.nominal_ps == pytest.approx(path_delay_ps(path))

    def test_corner_pessimism(self):
        """The all-worst corner is slower than the sampled 99.9th
        percentile — the statistical argument in numbers."""
        result = statistical_path_delays(
            self.path(), length_sigma_nm=5.0 / 3.0, worst_length_nm=40.0, n_samples=800
        )
        assert result.corner_ps > result.quantile_ps(0.999)
        assert result.corner_margin_percent > 1.0

    def test_sigma_grows_with_variation(self):
        small = statistical_path_delays(self.path(), 0.5, 40.0, n_samples=300)
        large = statistical_path_delays(self.path(), 3.0, 40.0, n_samples=300)
        assert large.sigma_ps > small.sigma_ps

    def test_deterministic_by_seed(self):
        a = statistical_path_delays(self.path(), 1.0, 40.0, n_samples=50, seed=9)
        b = statistical_path_delays(self.path(), 1.0, 40.0, n_samples=50, seed=9)
        assert np.array_equal(a.samples_ps, b.samples_ps)

    def test_mean_near_nominal(self):
        result = statistical_path_delays(self.path(), 1.0, 40.0, n_samples=800)
        assert result.mean_ps == pytest.approx(result.nominal_ps, rel=0.02)
