"""Unit + property tests for defect distributions, critical area, yield
models, redundant vias, and wire spreading."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect, Region
from repro.layout import Cell
from repro.yieldmodels import (
    DefectSizeDistribution,
    critical_area_opens,
    critical_area_shorts,
    insert_redundant_vias,
    spread_wires,
    via_failure_lambda,
    via_yield,
    weighted_critical_area,
    widen_wires,
    yield_negative_binomial,
    yield_poisson,
)
from repro.yieldmodels.yield_model import YieldBreakdown, layer_defect_lambda


class TestDsd:
    dsd = DefectSizeDistribution(x0_nm=45, x_max_nm=1800)

    def test_pdf_normalized(self):
        xs = np.linspace(1, 1800, 4000)
        assert np.trapezoid(self.dsd.pdf(xs), xs) == pytest.approx(1.0, abs=0.01)

    def test_pdf_peak_at_x0(self):
        assert self.dsd.pdf(45) >= self.dsd.pdf(20)
        assert self.dsd.pdf(45) >= self.dsd.pdf(200)

    def test_pdf_zero_outside(self):
        assert self.dsd.pdf(0.5) == 0.0
        assert self.dsd.pdf(5000) == 0.0

    def test_cdf_monotone(self):
        xs = np.linspace(1, 1800, 50)
        cdf = self.dsd.cdf(xs)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DefectSizeDistribution(x0_nm=10, x_max_nm=5)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10)
    def test_samples_in_range(self, seed):
        rng = np.random.default_rng(seed)
        samples = self.dsd.sample(500, rng)
        assert samples.min() >= self.dsd.x_min_nm
        assert samples.max() <= self.dsd.x_max_nm

    def test_sample_matches_cdf(self):
        rng = np.random.default_rng(7)
        samples = self.dsd.sample(20000, rng)
        median = float(np.median(samples))
        assert self.dsd.cdf(median) == pytest.approx(0.5, abs=0.02)

    def test_quadrature_sizes(self):
        sizes = self.dsd.quadrature_sizes(8)
        assert len(sizes) == 8
        assert sizes[0] == pytest.approx(self.dsd.x_min_nm)
        assert sizes[-1] == pytest.approx(self.dsd.x_max_nm)


class TestCriticalArea:
    wires = Region([Rect(0, 0, 1000, 45), Rect(0, 90, 1000, 135)])

    def test_shorts_zero_below_gap(self):
        assert critical_area_shorts(self.wires, 40) == 0

    def test_shorts_formula(self):
        # defect 60 > gap 45: band (60-45) x length, plus corner effects
        ca = critical_area_shorts(self.wires, 60)
        assert ca == pytest.approx(15 * 1000, rel=0.1)

    def test_shorts_single_feature_zero(self):
        assert critical_area_shorts(Region(Rect(0, 0, 100, 100)), 500) == 0

    def test_opens_zero_below_width(self):
        assert critical_area_opens(self.wires, 40) == 0

    def test_opens_formula(self):
        # (60-45) x 1000 per wire
        assert critical_area_opens(self.wires, 60) == 2 * 15 * 1000

    def test_monotone_in_defect_size(self):
        sizes = [50, 80, 120, 200]
        shorts = [critical_area_shorts(self.wires, s) for s in sizes]
        opens = [critical_area_opens(self.wires, s) for s in sizes]
        assert shorts == sorted(shorts)
        assert opens == sorted(opens)

    def test_weighted_positive(self):
        dsd = DefectSizeDistribution(45, 1800)
        assert weighted_critical_area(self.wires, dsd, "shorts") > 0
        assert weighted_critical_area(self.wires, dsd, "opens") > 0
        with pytest.raises(ValueError):
            weighted_critical_area(self.wires, dsd, "bogus")

    def test_spacing_reduces_shorts(self):
        near = Region([Rect(0, 0, 1000, 45), Rect(0, 90, 1000, 135)])
        far = Region([Rect(0, 0, 1000, 45), Rect(0, 180, 1000, 225)])
        assert critical_area_shorts(far, 100) < critical_area_shorts(near, 100)

    def test_widening_reduces_opens(self):
        thin = Region(Rect(0, 0, 1000, 45))
        fat = Region(Rect(0, 0, 1000, 90))
        assert critical_area_opens(fat, 100) < critical_area_opens(thin, 100)


class TestYieldModels:
    def test_poisson(self):
        assert yield_poisson(0.0) == 1.0
        assert yield_poisson(1.0) == pytest.approx(math.exp(-1))

    def test_negative_binomial_vs_poisson(self):
        lam = 0.8
        assert yield_negative_binomial(lam, 2.0) > yield_poisson(lam)

    def test_nb_limit_alpha_large(self):
        lam = 0.5
        assert yield_negative_binomial(lam, 1e6) == pytest.approx(yield_poisson(lam), rel=1e-4)

    def test_nb_validation(self):
        with pytest.raises(ValueError):
            yield_negative_binomial(0.1, 0)

    def test_layer_lambda_scales_with_d0(self, tech45):
        wires = Region([Rect(0, y, 2000, y + 45) for y in range(0, 900, 90)])
        l1 = layer_defect_lambda(wires, tech45.defects, d0_per_cm2=0.1)
        l2 = layer_defect_lambda(wires, tech45.defects, d0_per_cm2=1.0)
        assert l2 == pytest.approx(10 * l1)

    def test_breakdown(self):
        bd = YieldBreakdown()
        bd.add("m1", 0.05)
        bd.add("via", 0.02)
        bd.add("m1", 0.01)
        assert bd.total_lambda == pytest.approx(0.08)
        assert 0 < bd.poisson < 1
        assert bd.negative_binomial > bd.poisson
        assert "m1" in bd.summary()


class TestViaYield:
    def test_redundancy_quadratic(self):
        p = 1e-4
        assert via_failure_lambda(1000, 0, p) == pytest.approx(0.1)
        assert via_failure_lambda(0, 1000, p) == pytest.approx(1000 * p * p)

    def test_yield_improves(self):
        assert via_yield(0, 10**6, 1e-6) > via_yield(10**6, 0, 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            via_failure_lambda(1, 0, 1.5)


class TestRedundantVia:
    def build(self, tech45):
        L = tech45.layers
        cell = Cell("RV")
        cell.add_rect(L.metal1, Rect(0, 0, 400, 67))
        cell.add_rect(L.metal2, Rect(0, 0, 400, 67))
        cell.add_rect(L.via1, Rect(100, 11, 145, 56))
        return cell

    def test_opportunistic_insertion(self, tech45):
        cell = self.build(tech45)
        report = insert_redundant_vias(cell, tech45, extend_metal=False)
        assert report.total_vias == 1
        assert report.inserted == 1
        assert report.coverage == 1.0
        assert len(list(cell.region(tech45.layers.via1).rects())) == 2

    def test_inserted_via_enclosed(self, tech45):
        cell = self.build(tech45)
        report = insert_redundant_vias(cell, tech45, extend_metal=False)
        L = tech45.layers
        enc = tech45.via_enclosure
        new_via = Region(report.insertions[0])
        for layer in (L.metal1, L.metal2):
            assert cell.region(layer).covers(new_via.grown(enc))

    def test_metal_extension_when_needed(self, tech45):
        L = tech45.layers
        cell = Cell("TIGHT")
        cell.add_rect(L.metal1, Rect(989, 989, 1056, 1056))
        cell.add_rect(L.metal2, Rect(989, 989, 1056, 1056))
        cell.add_rect(L.via1, Rect(1000, 1000, 1045, 1045))
        blocked = insert_redundant_vias(cell.copy("A"), tech45, extend_metal=False)
        assert blocked.inserted == 0 and blocked.unfixable == 1
        fixed_cell = cell.copy("B")
        fixed = insert_redundant_vias(fixed_cell, tech45, extend_metal=True)
        assert fixed.inserted == 1
        assert fixed.added_metal_area > 0

    def test_already_redundant_skipped(self, tech45):
        L = tech45.layers
        cell = self.build(tech45)
        cell.add_rect(L.via1, Rect(199, 11, 244, 56))  # second cut at one pitch
        report = insert_redundant_vias(cell, tech45)
        assert report.already_redundant == 1
        assert report.inserted == 0

    def test_summary(self, tech45):
        report = insert_redundant_vias(self.build(tech45), tech45)
        assert "coverage" in report.summary()


class TestWireSpread:
    def test_spread_increases_space(self):
        wires = Region([Rect(0, 0, 1000, 45), Rect(0, 90, 1000, 135), Rect(0, 400, 1000, 445)])
        spread, report = spread_wires(wires, min_space=45, target_space=90)
        assert report.moved >= 1
        assert critical_area_shorts(spread, 90) < critical_area_shorts(wires, 90)
        assert spread.area == wires.area  # moves, never resizes

    def test_spread_respects_min_space(self):
        wires = Region([Rect(0, 0, 1000, 45), Rect(0, 90, 1000, 135), Rect(0, 180, 1000, 225)])
        spread, _ = spread_wires(wires, min_space=45, target_space=90)
        # no pair may be closer than min_space afterwards
        rects = list(spread.rects())
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert rects[i].distance(rects[j]) >= 45

    def test_widen_where_room(self):
        wires = Region([Rect(0, 0, 1000, 45), Rect(0, 400, 1000, 445)])
        widened, report = widen_wires(wires, min_space=45, widen_by=10)
        assert report.widened == 2
        assert critical_area_opens(widened, 80) < critical_area_opens(wires, 80)

    def test_widen_blocked_when_tight(self):
        wires = Region([Rect(0, 0, 1000, 45), Rect(0, 90, 1000, 135)])
        widened, report = widen_wires(wires, min_space=45, widen_by=10)
        assert report.widened == 0
        assert widened == wires

    def test_single_feature_noop(self):
        wire = Region(Rect(0, 0, 100, 45))
        spread, report = spread_wires(wire, 45, 90)
        assert spread == wire
        assert report.moved == 0


class TestRedistributeChannel:
    from repro.yieldmodels import redistribute_channel  # noqa: F401 - re-import below

    def ladder(self, n=6, pitch=90, width=45):
        return Region([Rect(0, i * pitch, 1000, i * pitch + width) for i in range(n)])

    def test_even_gaps(self):
        from repro.yieldmodels import redistribute_channel

        wires = self.ladder()
        out, report = redistribute_channel(wires, 45, 0, 1000)
        assert report.moved > 0
        rects = sorted(out.rects(), key=lambda r: r.y0)
        gaps = [b.y0 - a.y1 for a, b in zip(rects, rects[1:])]
        assert max(gaps) - min(gaps) <= 1  # even up to integer division
        assert min(gaps) >= 45

    def test_area_preserved(self):
        from repro.yieldmodels import redistribute_channel

        wires = self.ladder()
        out, _ = redistribute_channel(wires, 45, 0, 1000)
        assert out.area == wires.area
        assert len(out.components()) == len(wires.components())

    def test_too_tight_channel_unchanged(self):
        from repro.yieldmodels import redistribute_channel

        wires = self.ladder()
        out, report = redistribute_channel(wires, 45, 0, 6 * 45 + 5 * 44)
        assert out == wires
        assert report.moved == 0

    def test_reduces_short_critical_area(self):
        from repro.yieldmodels import redistribute_channel

        wires = self.ladder()
        out, _ = redistribute_channel(wires, 45, 0, 1200)
        assert critical_area_shorts(out, 120) < critical_area_shorts(wires, 120)

    def test_vertical_wires(self):
        from repro.yieldmodels import redistribute_channel

        wires = Region([Rect(i * 90, 0, i * 90 + 45, 1000) for i in range(4)])
        out, report = redistribute_channel(wires, 45, 0, 800, horizontal_wires=False)
        assert report.moved > 0
        rects = sorted(out.rects(), key=lambda r: r.x0)
        gaps = [b.x0 - a.x1 for a, b in zip(rects, rects[1:])]
        assert min(gaps) >= 45
