"""Tests for the extension modules: Monte Carlo defect injection, tiled
full-chip litho scanning, and design-driven metrology."""

import numpy as np
import pytest

from repro.designgen import isolated_line, line_grating
from repro.geometry import Point, Rect, Region
from repro.litho import (
    build_metrology_plan,
    cd_statistics,
    find_hotspots,
    measure_plan,
    scan_full_chip,
)
from repro.yieldmodels import (
    DefectInjector,
    critical_area_opens,
    critical_area_shorts,
    estimate_fault_probability,
    weighted_critical_area,
)
from repro.yieldmodels.dsd import DefectSizeDistribution

WIRES = Region([Rect(0, i * 90, 4000, i * 90 + 45) for i in range(10)])
EXTENT = WIRES.bbox.expanded(500)
DSD = DefectSizeDistribution(45, 1800)


class TestDefectInjector:
    def test_classify_short(self):
        injector = DefectInjector(WIRES, EXTENT)
        # defect spanning the gap between wire 0 and wire 1
        assert injector.classify(Rect(100, 30, 200, 100)) == "short"

    def test_classify_open(self):
        injector = DefectInjector(WIRES, EXTENT)
        # defect spanning wire 0's full width but touching nothing else
        assert injector.classify(Rect(100, -10, 200, 55)) == "open"

    def test_classify_benign(self):
        injector = DefectInjector(WIRES, EXTENT)
        assert injector.classify(Rect(100, 50, 130, 80)) == "benign"  # inside a gap
        assert injector.classify(Rect(100, 5, 130, 40)) == "benign"  # inside a wire

    def test_run_deterministic(self):
        injector = DefectInjector(WIRES, EXTENT)
        a = injector.run(500, DSD, np.random.default_rng(5))
        b = injector.run(500, DSD, np.random.default_rng(5))
        assert (a.shorts, a.opens, a.benign) == (b.shorts, b.opens, b.benign)

    def test_counts_partition(self):
        injector = DefectInjector(WIRES, EXTENT)
        result = injector.run(1000, DSD, np.random.default_rng(1))
        assert result.shorts + result.opens + result.benign == 1000
        assert 0 <= result.fault_probability <= 1

    def test_zero_defects(self):
        injector = DefectInjector(WIRES, EXTENT)
        assert injector.run(0, DSD, np.random.default_rng(1)).fault_probability == 0.0

    def test_kill_positions(self):
        injector = DefectInjector(WIRES, EXTENT)
        result = injector.run(500, DSD, np.random.default_rng(2), keep_positions=True)
        assert len(result.kill_positions) == result.shorts + result.opens

    def test_matches_analytic_critical_area(self):
        """The headline validation: MC fault probability equals the
        DSD-weighted critical area per unit extent within a few percent."""
        p_mc = estimate_fault_probability(WIRES, DSD, n_defects=20000, seed=3, extent=EXTENT)
        ca = sum(weighted_critical_area(WIRES, DSD, m, n_sizes=24) for m in ("shorts", "opens"))
        p_analytic = ca / EXTENT.area
        assert p_mc == pytest.approx(p_analytic, rel=0.10)

    def test_fixed_size_shorts_match(self):
        injector = DefectInjector(WIRES, EXTENT)
        rng = np.random.default_rng(0)
        n, size = 8000, 100
        half = size // 2
        xs = rng.integers(EXTENT.x0, EXTENT.x1, n)
        ys = rng.integers(EXTENT.y0, EXTENT.y1, n)
        shorts = sum(
            1
            for x, y in zip(xs, ys)
            if injector.classify(Rect(int(x) - half, int(y) - half, int(x) + half + 1, int(y) + half + 1)) == "short"
        )
        expected = critical_area_shorts(WIRES, size) / EXTENT.area
        assert shorts / n == pytest.approx(expected, rel=0.1)


class TestCriticalAreaExclusive:
    def test_opens_saturate_not_grow(self):
        # at huge defect sizes the open band is eaten by the short region
        small = critical_area_opens(WIRES, 100)
        huge = critical_area_opens(WIRES, 800)
        assert huge <= small * 3
        assert huge < EXTENT.area

    def test_opens_exclusive_vs_inclusive(self):
        inclusive = critical_area_opens(WIRES, 200, exclusive=False)
        exclusive = critical_area_opens(WIRES, 200, exclusive=True)
        assert exclusive < inclusive

    def test_single_wire_unaffected(self):
        wire = Region(Rect(0, 0, 1000, 45))
        assert critical_area_opens(wire, 60) == critical_area_opens(wire, 60, exclusive=False)


class TestFullChipScan:
    def test_matches_single_window_on_small_layout(self, tech45, litho45):
        region = Region([Rect(0, 0, 45, 500), Rect(0, 560, 45, 1000)])
        single = find_hotspots(
            litho45, region, Rect(-100, -100, 200, 1100), pinch_limit=22
        )
        report = scan_full_chip(
            litho45, region, Rect(-100, -100, 200, 1100), tile_nm=5000, pinch_limit=22
        )
        assert len(report.hotspots) == len(single)

    def test_seam_dedup(self, litho45):
        # a hotspot pair exactly on a tile seam is not double-counted
        region = Region([Rect(0, 0, 45, 1990), Rect(0, 2050, 45, 4000)])
        whole = scan_full_chip(
            litho45, region, Rect(-200, -200, 300, 4200), tile_nm=10000, pinch_limit=22
        )
        tiled = scan_full_chip(
            litho45, region, Rect(-200, -200, 300, 4200), tile_nm=2200, pinch_limit=22
        )
        assert tiled.tiles > whole.tiles
        assert len(tiled.hotspots) <= len(whole.hotspots) + 1

    def test_empty(self, litho45):
        report = scan_full_chip(litho45, Region())
        assert report.tiles == 0
        assert report.hotspots == []

    def test_summary(self, litho45):
        region = Region(Rect(0, 0, 400, 400))
        report = scan_full_chip(litho45, region, tile_nm=1000, pinch_limit=22)
        assert "tiles" in report.summary()


class TestMetrology:
    def calibration_layout(self, tech45):
        return line_grating(45, 90, 8, 2000) | isolated_line(45, 2000, Point(2000, 0))

    def test_plan_contexts(self, tech45):
        plan = build_metrology_plan(self.calibration_layout(tech45))
        contexts = set(plan.by_context())
        assert {"dense", "iso", "line-end"} <= contexts

    def test_gauge_budget(self, tech45):
        plan = build_metrology_plan(self.calibration_layout(tech45), max_gauges_per_context=3)
        for gauges in plan.by_context().values():
            assert len(gauges) <= 3

    def test_merged_features_skipped(self):
        # an L (two merged rects) has no simple CD: no width gauge
        l_shape = Region([Rect(0, 0, 45, 1000), Rect(0, 0, 1000, 45)])
        plan = build_metrology_plan(l_shape)
        assert len(plan) == 0

    def test_measured_errors_physical(self, tech45, litho45):
        layout = self.calibration_layout(tech45)
        plan = build_metrology_plan(layout)
        records = measure_plan(litho45, layout, plan)
        stats = cd_statistics(records)
        dense_mean, dense_worst, _ = stats["dense"]
        iso_mean, _, _ = stats["iso"]
        end_mean, _, _ = stats["line-end"]
        assert abs(dense_mean) < 3  # dense anchored
        assert iso_mean > dense_mean  # flare prints iso fat
        assert end_mean < 0  # pullback shortens lines
        assert dense_worst < 10

    def test_dose_shifts_all_gauges(self, tech45, litho45):
        layout = self.calibration_layout(tech45)
        plan = build_metrology_plan(layout, max_gauges_per_context=4)
        nominal = measure_plan(litho45, layout, plan)
        overdose = measure_plan(litho45, layout, plan, dose=1.08)
        for a, b in zip(nominal, overdose):
            if a.gauge.context in ("dense", "iso"):
                assert b.printed_cd > a.printed_cd
