"""Unit + property tests for the 1-D interval algebra."""

from hypothesis import given, strategies as st

from repro.geometry.intervals import (
    clip_intervals,
    intersect_intervals,
    merge_intervals,
    subtract_intervals,
    total_length,
    xor_intervals,
)


def canonical(intervals):
    return merge_intervals(list(intervals))


raw_intervals = st.lists(
    st.tuples(st.integers(-100, 100), st.integers(1, 40)).map(lambda t: (t[0], t[0] + t[1])),
    max_size=8,
)


def to_set(intervals):
    out = set()
    for a, b in intervals:
        out.update(range(a, b))
    return out


class TestMerge:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_overlapping(self):
        assert merge_intervals([(0, 5), (3, 8)]) == [(0, 8)]

    def test_touching_coalesce(self):
        assert merge_intervals([(0, 5), (5, 8)]) == [(0, 8)]

    def test_disjoint_stay(self):
        assert merge_intervals([(0, 2), (5, 8)]) == [(0, 2), (5, 8)]

    def test_unsorted_input(self):
        assert merge_intervals([(5, 8), (0, 2), (1, 6)]) == [(0, 8)]

    @given(raw_intervals)
    def test_merge_is_union(self, ivs):
        assert to_set(merge_intervals(ivs)) == to_set(ivs)

    @given(raw_intervals)
    def test_idempotent(self, ivs):
        m = merge_intervals(ivs)
        assert merge_intervals(m) == m


class TestBooleanOps:
    def test_intersect_basic(self):
        assert intersect_intervals([(0, 10)], [(5, 15)]) == [(5, 10)]

    def test_intersect_touching_empty(self):
        assert intersect_intervals([(0, 5)], [(5, 10)]) == []

    def test_subtract_splits(self):
        assert subtract_intervals([(0, 10)], [(3, 6)]) == [(0, 3), (6, 10)]

    def test_subtract_all(self):
        assert subtract_intervals([(2, 5)], [(0, 10)]) == []

    def test_xor(self):
        assert xor_intervals([(0, 10)], [(5, 15)]) == [(0, 5), (10, 15)]

    @given(raw_intervals, raw_intervals)
    def test_intersect_matches_sets(self, a, b):
        ca, cb = canonical(a), canonical(b)
        assert to_set(intersect_intervals(ca, cb)) == to_set(ca) & to_set(cb)

    @given(raw_intervals, raw_intervals)
    def test_subtract_matches_sets(self, a, b):
        ca, cb = canonical(a), canonical(b)
        assert to_set(subtract_intervals(ca, cb)) == to_set(ca) - to_set(cb)

    @given(raw_intervals, raw_intervals)
    def test_xor_matches_sets(self, a, b):
        ca, cb = canonical(a), canonical(b)
        assert to_set(xor_intervals(ca, cb)) == to_set(ca) ^ to_set(cb)


class TestHelpers:
    def test_total_length(self):
        assert total_length([(0, 3), (10, 14)]) == 7

    def test_clip(self):
        assert clip_intervals([(0, 10), (20, 30)], 5, 25) == [(5, 10), (20, 25)]

    def test_clip_empty_result(self):
        assert clip_intervals([(0, 3)], 5, 10) == []
