"""Unit tests for CMP (density, fill, thickness) and timing (devices,
delay, paths)."""

import math

import pytest

from repro.cmp import density_map, dummy_fill, thickness_map
from repro.geometry import Rect, Region
from repro.tech.technology import CmpSettings
from repro.timing import (
    DelayModel,
    Stage,
    TimingPath,
    compare_paths,
    equivalent_length_drive,
    equivalent_length_leakage,
    gate_delay_ps,
    leakage_nw,
    path_delay_ps,
    slice_gate,
    wire_delay_ps,
)
from repro.timing.devices import GateSlices


class TestDensity:
    def test_uniform(self):
        region = Region(Rect(0, 0, 1000, 500))
        dm = density_map(region, Rect(0, 0, 1000, 1000), window=500)
        assert dm.mean == pytest.approx(0.5, abs=0.2)
        assert 0 <= dm.min <= dm.max <= 1

    def test_empty(self):
        dm = density_map(Region(), Rect(0, 0, 1000, 1000), window=500)
        assert dm.max == 0.0

    def test_gradient_detected(self):
        region = Region(Rect(0, 0, 500, 1000))  # left half full
        dm = density_map(region, Rect(0, 0, 1000, 1000), window=500, step=500)
        assert dm.range == pytest.approx(1.0)

    def test_tiles_outside(self):
        region = Region(Rect(0, 0, 500, 1000))
        dm = density_map(region, Rect(0, 0, 1000, 1000), window=500, step=500)
        assert dm.tiles_outside(0.2, 0.8) == 4  # all four half-step tiles are 0.0 or 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            density_map(Region(), Rect(0, 0, 10, 10), window=0)


class TestFill:
    settings = CmpSettings(window_nm=1000, step_nm=500, target_density=0.4)

    def test_fill_raises_density(self):
        signal = Region(Rect(0, 0, 400, 400))
        extent = Rect(0, 0, 4000, 4000)
        fill, report = dummy_fill(signal, extent, self.settings, fill_size=200, fill_space=100, keepout=100)
        assert report.shapes_added > 0
        before = density_map(signal, extent, 1000)
        after = density_map(signal | fill, extent, 1000)
        assert after.min > before.min
        assert after.range < before.range

    def test_fill_respects_keepout(self):
        signal = Region(Rect(1000, 1000, 1400, 1400))
        extent = Rect(0, 0, 3000, 3000)
        fill, _ = dummy_fill(signal, extent, self.settings, fill_size=200, fill_space=100, keepout=150)
        assert (fill & signal.grown(149)).is_empty

    def test_fill_shapes_spaced(self):
        signal = Region()
        extent = Rect(0, 0, 2000, 2000)
        fill, _ = dummy_fill(signal, extent, self.settings, fill_size=200, fill_space=100)
        rects = list(fill.rects())
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert rects[i].distance(rects[j]) >= 100

    def test_deterministic(self):
        signal = Region(Rect(0, 0, 300, 300))
        extent = Rect(0, 0, 3000, 3000)
        f1, _ = dummy_fill(signal, extent, self.settings)
        f2, _ = dummy_fill(signal, extent, self.settings)
        assert f1 == f2


class TestThickness:
    def test_flat_density_flat_thickness(self):
        region = Region(Rect(0, 0, 2000, 2000))
        settings = CmpSettings(window_nm=1000, target_density=1.0)
        dm = density_map(region, Rect(0, 0, 2000, 2000), 1000)
        stats = thickness_map(dm, settings)
        assert stats.range == pytest.approx(0.0, abs=1e-9)

    def test_density_gradient_thickness_range(self):
        region = Region(Rect(0, 0, 1000, 2000))
        settings = CmpSettings(window_nm=1000, thickness_per_density_nm=60.0)
        dm = density_map(region, Rect(0, 0, 2000, 2000), 1000, step=1000)
        stats = thickness_map(dm, settings)
        assert stats.range == pytest.approx(60.0, abs=1.0)
        assert "thickness" in stats.summary()


class TestDevices:
    def test_rect_gate_slices(self):
        poly = Region(Rect(0, 0, 35, 200))
        active = Region(Rect(-100, 50, 100, 150))
        gate = slice_gate(poly, active)
        assert gate.total_width == 100
        assert gate.min_length == pytest.approx(35)
        assert gate.max_length == pytest.approx(35)

    def test_rect_gate_equivalents_match_drawn(self):
        poly = Region(Rect(0, 0, 35, 200))
        active = Region(Rect(-100, 50, 100, 150))
        gate = slice_gate(poly, active)
        assert equivalent_length_drive(gate) == pytest.approx(35, rel=1e-6)
        assert equivalent_length_leakage(gate) == pytest.approx(35, rel=1e-6)

    def test_nonrect_drive_vs_leakage(self):
        # half the width at L=30, half at L=40
        gate = GateSlices(slices=((50, 30.0), (50, 40.0)))
        drive = equivalent_length_drive(gate)
        leak = equivalent_length_leakage(gate, subthreshold_nm=10.0)
        assert 30 < drive < 40
        assert leak < drive  # leakage dominated by the short slice
        harmonic = 100 / (50 / 30 + 50 / 40)
        assert drive == pytest.approx(harmonic)

    def test_leakage_dominated_by_min(self):
        gate = GateSlices(slices=((10, 25.0), (90, 40.0)))
        leak = equivalent_length_leakage(gate, subthreshold_nm=5.0)
        assert leak < 36  # below the 38.5 area-weighted mean, pulled toward 25

    def test_empty_gate(self):
        gate = slice_gate(Region(), Region(Rect(0, 0, 10, 10)))
        assert gate.slices == ()
        assert equivalent_length_drive(gate) == 0.0


class TestDelay:
    model = DelayModel()

    def test_gate_delay_scales_with_load(self):
        d1 = gate_delay_ps(self.model, 200, 35, load_ff=1.0)
        d2 = gate_delay_ps(self.model, 200, 35, load_ff=4.0)
        assert d2 > d1

    def test_gate_delay_scales_with_length(self):
        d_short = gate_delay_ps(self.model, 200, 30, load_ff=2.0)
        d_long = gate_delay_ps(self.model, 200, 40, load_ff=2.0)
        assert d_long > d_short

    def test_wire_delay_quadratic_in_length(self):
        d1 = wire_delay_ps(self.model, 1000)
        d2 = wire_delay_ps(self.model, 2000)
        assert d2 > 2 * d1  # RC wire: superlinear

    def test_leakage_exponential_in_length(self):
        i_short = leakage_nw(self.model, 100, 30)
        i_nom = leakage_nw(self.model, 100, 35)
        assert i_short / i_nom == pytest.approx(math.exp(0.5), rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            gate_delay_ps(self.model, 0, 35, 1.0)


class TestPaths:
    def make_paths(self):
        p1 = TimingPath("P1", [Stage(f"g{i}", 180, 35.0, wire_length_nm=500) for i in range(6)])
        p2 = TimingPath("P2", [Stage(f"h{i}", 180, 35.0, wire_length_nm=200) for i in range(7)])
        return [p1, p2]

    def test_path_delay_positive_additive(self):
        paths = self.make_paths()
        d = path_delay_ps(paths[0])
        assert d > 0
        longer = TimingPath("L", paths[0].stages * 2)
        assert path_delay_ps(longer) == pytest.approx(2 * d)

    def test_annotation_shifts_delay(self):
        paths = self.make_paths()
        anno = {"P1": {f"g{i}": 40.0 for i in range(6)}}
        cmp_result = compare_paths(paths, anno)
        assert cmp_result.annotated_ps[0] > cmp_result.drawn_ps[0]
        assert cmp_result.annotated_ps[1] == pytest.approx(cmp_result.drawn_ps[1])

    def test_critical_path_reorder(self):
        paths = self.make_paths()
        drawn = [path_delay_ps(p) for p in paths]
        slower, faster = (0, 1) if drawn[0] > drawn[1] else (1, 0)
        # annotate the faster path with much longer channels
        anno = {paths[faster].name: {s.name: 50.0 for s in paths[faster].stages}}
        cmp_result = compare_paths(paths, anno)
        assert cmp_result.critical_path_changed
        assert cmp_result.reorder_count() >= 1
        assert cmp_result.worst_shift_percent > 0

    def test_with_lengths_copy(self):
        path = self.make_paths()[0]
        annotated = path.with_lengths({"g0": 99.0})
        assert annotated.stages[0].drawn_length_nm == 99.0
        assert path.stages[0].drawn_length_nm == 35.0

    def test_summary(self):
        cmp_result = compare_paths(self.make_paths(), {})
        assert "paths" in cmp_result.summary()
