"""Tests for alternating phase-shift mask assignment."""


from repro.dpt import assign_phases, critical_gates
from repro.geometry import Rect, Region


def two_lines(gap=150, gate_w=31):
    poly = Region([Rect(0, 0, gate_w, 400), Rect(gap, 0, gap + gate_w, 400)])
    active = Region(Rect(-100, 100, gap + gate_w + 100, 200))
    return poly, active


class TestCriticalGates:
    def test_filters_by_length(self):
        poly, active = two_lines()
        assert len(critical_gates(poly, active, max_length_nm=40)) == 2
        assert len(critical_gates(poly, active, max_length_nm=20)) == 0

    def test_no_active_no_gates(self):
        poly, _ = two_lines()
        assert critical_gates(poly, Region(), 40) == []


class TestAssignPhases:
    def test_two_lines_alternate(self):
        poly, active = two_lines()
        pa = assign_phases(poly, active, 40, interaction_nm=250)
        assert pa.ok
        assert pa.critical_gates == 2
        assert not pa.phase0.is_empty and not pa.phase180.is_empty
        assert not pa.phase0.overlaps(pa.phase180)

    def test_n_and_p_gates_are_one_node(self):
        """One poly line crossing two diffusions is a single phase node —
        no spurious self-conflict."""
        poly = Region(Rect(0, 0, 31, 700))
        active = Region([Rect(-100, 100, 130, 200), Rect(-100, 500, 130, 600)])
        pa = assign_phases(poly, active, 40, interaction_nm=250)
        assert pa.ok
        assert pa.critical_gates == 2

    def test_dense_triangle_conflicts(self):
        poly = Region([Rect(0, 0, 31, 300), Rect(50, 0, 81, 300), Rect(100, 0, 131, 300)])
        active = Region(Rect(-50, 100, 200, 200))
        pa = assign_phases(poly, active, 40, interaction_nm=80)
        assert not pa.ok
        assert pa.conflicts == 1

    def test_isolated_lines_clean(self):
        poly, active = two_lines(gap=2000)
        pa = assign_phases(poly, active, 40, interaction_nm=250)
        assert pa.ok

    def test_no_critical_gates(self):
        poly = Region(Rect(0, 0, 200, 400))  # fat poly: not critical
        active = Region(Rect(-100, 100, 300, 200))
        pa = assign_phases(poly, active, 40, interaction_nm=250)
        assert pa.critical_gates == 0
        assert pa.phase0.is_empty

    def test_stdcells_phase_assignable(self, stdlib45, tech45):
        """The generated library is altPSM-compatible at its own pitch."""
        L = tech45.layers
        for name in stdlib45.names():
            cell = stdlib45[name].cell
            pa = assign_phases(
                cell.region(L.poly), cell.region(L.active), 40, interaction_nm=250
            )
            assert pa.ok, f"{name}: {pa.summary()}"
            assert not pa.phase0.overlaps(pa.phase180)

    def test_summary(self):
        poly, active = two_lines()
        pa = assign_phases(poly, active, 40, 250)
        assert "altPSM" in pa.summary()
