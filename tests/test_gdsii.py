"""Unit tests for GDSII records and stream I/O plus JSON interchange."""

import pytest

from repro.gdsii import read_gds, read_json, write_gds, write_json
from repro.gdsii.records import (
    GdsFormatError,
    Record,
    decode_real8,
    encode_real8,
    iter_records,
    make_record,
    rec_ascii,
    rec_int2,
    rec_int4,
    DT_INT2,
    HEADER,
    ENDLIB,
)
from repro.geometry import Orientation, Point, Polygon, Rect, Transform
from repro.layout import Layer, Layout

M1 = Layer(10, 0, "M1")
V1 = Layer(11, 0, "V1")


class TestReal8:
    @pytest.mark.parametrize(
        "value",
        [0.0, 1.0, -1.0, 0.5, 2.0, 1e-3, 1e-9, 1e-6, 123456.789, 0.001953125, -42.5],
    )
    def test_roundtrip(self, value):
        decoded = decode_real8(encode_real8(value))
        assert decoded == pytest.approx(value, rel=1e-12, abs=1e-300)

    def test_wrong_length(self):
        with pytest.raises(GdsFormatError):
            decode_real8(b"\x00" * 4)

    def test_known_encoding_one(self):
        # 1.0 = 0x41 10 00 ... (exponent 65, mantissa 1/16)
        assert encode_real8(1.0)[0] == 0x41


class TestRecords:
    def test_int2_roundtrip(self):
        data = rec_int2(HEADER, [600])
        records = list(iter_records(data + rec_int2(ENDLIB, [])))
        assert records[0].int2() == [600]

    def test_padding_to_even(self):
        rec = rec_ascii(0x02, "ABC")  # odd length payload
        assert len(rec) % 2 == 0

    def test_iter_rejects_bad_length(self):
        with pytest.raises(GdsFormatError):
            list(iter_records(b"\x00\x02\x00\x00"))

    def test_record_name(self):
        assert Record(HEADER, DT_INT2, b"").name == "HEADER"
        assert Record(0x99, 0, b"").name == "0x99"

    def test_int4(self):
        data = rec_int4(0x10, [-1, 2_000_000])
        rec = next(iter_records(data + make_record(ENDLIB, 0)))
        assert rec.int4() == [-1, 2_000_000]


def build_library() -> Layout:
    lib = Layout("TESTLIB")
    child = lib.new_cell("CHILD")
    child.add_rect(M1, Rect(0, 0, 100, 50))
    child.add_polygon(M1, Polygon.l_shape(200, 200, 80, 80, Point(300, 0)))
    top = lib.new_cell("TOP")
    top.add_rect(V1, Rect(5, 5, 45, 45))
    top.add_ref(child, Transform(1000, 2000, Orientation.R90))
    top.add_ref(child, Transform(0, 0, Orientation.MX180), columns=3, rows=2, dx=600, dy=400)
    return lib


class TestStreamRoundtrip:
    def test_full_roundtrip(self, tmp_path):
        lib = build_library()
        path = tmp_path / "t.gds"
        write_gds(lib, path)
        lib2 = read_gds(path, {(10, 0): "M1", (11, 0): "V1"})
        assert set(lib2.cells) == {"CHILD", "TOP"}
        assert lib2.top_cell().name == "TOP"
        for layer in (M1, V1):
            assert lib2.cell("TOP").region(layer) == lib.cell("TOP").region(layer)

    def test_units_preserved(self, tmp_path):
        lib = Layout("U", dbu_nm=1.0)
        lib.new_cell("A").add_rect(M1, Rect(0, 0, 1, 1))
        path = tmp_path / "u.gds"
        write_gds(lib, path)
        assert read_gds(path).dbu_nm == pytest.approx(1.0)

    def test_deterministic_output(self, tmp_path):
        lib = build_library()
        p1, p2 = tmp_path / "a.gds", tmp_path / "b.gds"
        write_gds(lib, p1)
        write_gds(lib, p2)
        assert p1.read_bytes() == p2.read_bytes()

    def test_children_before_parents(self, tmp_path):
        lib = build_library()
        path = tmp_path / "o.gds"
        write_gds(lib, path)
        raw = path.read_bytes()
        assert raw.index(b"CHILD") < raw.index(b"TOP")

    def test_all_orientations_roundtrip(self, tmp_path):
        lib = Layout("ORIENT")
        child = lib.new_cell("C")
        child.add_rect(M1, Rect(0, 0, 30, 10))
        top = lib.new_cell("TOP")
        for i, orient in enumerate(Orientation):
            top.add_ref(child, Transform(i * 1000, 0, orient))
        path = tmp_path / "orient.gds"
        write_gds(lib, path)
        lib2 = read_gds(path)
        assert lib2.cell("TOP").region(Layer(10, 0)) == top.region(M1)

    def test_unknown_ref_rejected(self, tmp_path):
        # hand-construct a stream with an SREF to a missing cell
        from repro.gdsii import records as rec

        chunks = [
            rec.rec_int2(rec.HEADER, [600]),
            rec.rec_int2(rec.BGNLIB, [1970, 1, 1, 0, 0, 0] * 2),
            rec.rec_ascii(rec.LIBNAME, "BAD"),
            rec.rec_real8(rec.UNITS, [1e-3, 1e-9]),
            rec.rec_int2(rec.BGNSTR, [1970, 1, 1, 0, 0, 0] * 2),
            rec.rec_ascii(rec.STRNAME, "TOP"),
            rec.rec_empty(rec.SREF),
            rec.rec_ascii(rec.SNAME, "MISSING"),
            rec.rec_int4(rec.XY, [0, 0]),
            rec.rec_empty(rec.ENDEL),
            rec.rec_empty(rec.ENDSTR),
            rec.rec_empty(rec.ENDLIB),
        ]
        path = tmp_path / "bad.gds"
        path.write_bytes(b"".join(chunks))
        with pytest.raises(GdsFormatError):
            read_gds(path)


class TestJson:
    def test_roundtrip(self, tmp_path):
        lib = build_library()
        path = tmp_path / "t.json"
        write_json(lib, path)
        lib2 = read_json(path)
        assert set(lib2.cells) == {"CHILD", "TOP"}
        assert lib2.cell("TOP").region(M1) == lib.cell("TOP").region(M1)
        assert lib2.cell("TOP").region(V1) == lib.cell("TOP").region(V1)

    def test_layer_names_preserved(self, tmp_path):
        lib = build_library()
        path = tmp_path / "t.json"
        write_json(lib, path)
        lib2 = read_json(path)
        layers = lib2.cell("CHILD").layers
        assert any(l.name == "M1" for l in layers)
