"""Unit tests for Region: canonical form, boolean algebra, morphology,
structure queries."""

import pytest

from repro.geometry import Point, Rect, Region


def R(*rects):
    return Region([Rect(*r) for r in rects])


class TestCanonicalForm:
    def test_empty(self):
        region = Region()
        assert region.is_empty
        assert region.area == 0
        assert region.bbox is None
        assert list(region.rects()) == []
        assert not region

    def test_single_rect(self):
        region = R((0, 0, 10, 10))
        assert region.area == 100
        assert region.bbox == Rect(0, 0, 10, 10)
        assert len(region) == 1

    def test_degenerate_dropped(self):
        assert Region(Rect(0, 0, 0, 10)).is_empty

    def test_overlapping_input_canonicalized(self):
        a = R((0, 0, 10, 10), (5, 0, 15, 10))
        b = R((0, 0, 15, 10))
        assert a == b
        assert hash(a) == hash(b)

    def test_same_pointset_same_rects(self):
        # two different constructions of an L-shape
        a = R((0, 0, 10, 20), (10, 0, 20, 10))
        b = R((0, 10, 10, 20), (0, 0, 20, 10))
        assert a == b
        assert list(a.rects()) == list(b.rects())

    def test_horizontal_merge(self):
        # two abutting rects of equal height merge into one
        region = R((0, 0, 10, 10), (10, 0, 20, 10))
        assert len(region) == 1
        assert next(region.rects()) == Rect(0, 0, 20, 10)

    def test_vertical_stack_stays_in_one_slab(self):
        region = R((0, 0, 10, 10), (0, 20, 10, 30))
        assert len(region) == 2
        assert region.area == 200

    def test_touching_vertically_coalesce(self):
        region = R((0, 0, 10, 10), (0, 10, 10, 20))
        assert len(region) == 1


class TestBooleanAlgebra:
    def test_union_disjoint(self):
        assert (R((0, 0, 1, 1)) | R((5, 5, 6, 6))).area == 2

    def test_intersection(self):
        assert (R((0, 0, 10, 10)) & R((5, 5, 15, 15))) == R((5, 5, 10, 10))

    def test_difference(self):
        d = R((0, 0, 10, 10)) - R((0, 0, 10, 5))
        assert d == R((0, 5, 10, 10))

    def test_xor(self):
        x = R((0, 0, 10, 10)) ^ R((5, 0, 15, 10))
        assert x.area == 100

    def test_touching_intersection_empty(self):
        assert (R((0, 0, 10, 10)) & R((10, 0, 20, 10))).is_empty

    def test_covers(self):
        big = R((0, 0, 100, 100))
        assert big.covers(R((10, 10, 20, 20)))
        assert not R((10, 10, 20, 20)).covers(big)
        assert big.covers(Region())

    def test_overlaps(self):
        assert R((0, 0, 10, 10)).overlaps(R((5, 5, 6, 6)))
        assert not R((0, 0, 10, 10)).overlaps(R((10, 0, 20, 10)))

    def test_subtract_hole_makes_frame(self):
        frame = R((0, 0, 30, 30)) - R((10, 10, 20, 20))
        assert frame.area == 900 - 100
        assert frame.holes().area == 100


class TestMembership:
    def test_contains_point(self):
        region = R((0, 0, 10, 10), (20, 0, 30, 10))
        assert region.contains_point(Point(5, 5))
        assert region.contains_point(Point(10, 10))  # closed boundary
        assert not region.contains_point(Point(15, 5))
        assert region.contains_point(Point(20, 0))


class TestTransforms:
    def test_translated(self):
        assert R((0, 0, 1, 1)).translated(5, 7) == R((5, 7, 6, 8))

    def test_scaled(self):
        assert R((1, 1, 2, 3)).scaled(10) == R((10, 10, 20, 30))

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            R((0, 0, 1, 1)).scaled(0)


class TestMorphology:
    def test_grow(self):
        assert R((0, 0, 10, 10)).grown(5) == R((-5, -5, 15, 15))

    def test_shrink(self):
        assert R((0, 0, 10, 10)).grown(-2) == R((2, 2, 8, 8))

    def test_shrink_to_nothing(self):
        assert R((0, 0, 10, 10)).grown(-5).is_empty

    def test_grow_merges_near_features(self):
        two = R((0, 0, 10, 10), (14, 0, 24, 10))
        assert len(two.grown(3).components()) == 1

    def test_anisotropic(self):
        assert R((0, 0, 10, 10)).grown(2, 0) == R((-2, 0, 12, 10))

    def test_opening_removes_narrow(self):
        # 10-wide arm + 30-wide plate
        region = R((0, 0, 10, 100), (0, 0, 100, 30))
        opened = region.opened(10)  # removes features narrower than 20
        assert opened == R((0, 0, 100, 30))

    def test_opening_keeps_wide(self):
        region = R((0, 0, 50, 50))
        assert region.opened(10) == region

    def test_closing_fills_gap(self):
        two = R((0, 0, 10, 100), (16, 0, 26, 100))
        closed = two.closed(4)  # fills gaps narrower than 8
        assert closed.area == two.area + 6 * 100

    def test_closing_leaves_wide_gap(self):
        two = R((0, 0, 10, 100), (30, 0, 40, 100))
        assert two.closed(4) == two

    def test_open_close_idempotent(self):
        region = R((0, 0, 50, 50), (100, 0, 150, 40))
        assert region.opened(5).opened(5) == region.opened(5)
        assert region.closed(5).closed(5) == region.closed(5)


class TestStructure:
    def test_components_edge_adjacency(self):
        region = R((0, 0, 10, 10), (10, 0, 20, 10), (30, 0, 40, 10))
        assert len(region.components()) == 2

    def test_components_corner_touch_separate(self):
        region = R((0, 0, 10, 10), (10, 10, 20, 20))
        assert len(region.components()) == 2

    def test_components_partition_area(self):
        region = R((0, 0, 10, 10), (5, 5, 30, 8), (50, 50, 60, 60))
        assert sum(c.area for c in region.components()) == region.area

    def test_holes_nested(self):
        donut = R((0, 0, 50, 50)) - R((10, 10, 40, 40))
        assert donut.holes().area == 900

    def test_no_holes(self):
        assert R((0, 0, 10, 10)).holes().is_empty

    def test_perimeter_square(self):
        assert R((0, 0, 10, 10)).perimeter() == 40

    def test_perimeter_l_shape(self):
        l_shape = R((0, 0, 10, 20), (10, 0, 20, 10))
        # L-shape perimeter: same as bbox perimeter for a staircase-free L
        assert l_shape.perimeter() == 2 * (20 + 20)

    def test_edges_orientation_count(self):
        edges = R((0, 0, 10, 10)).edges()
        assert len(edges) == 4
        total = sum(abs(b.x - a.x) + abs(b.y - a.y) for a, b in edges)
        assert total == 40

    def test_clipped(self):
        region = R((0, 0, 100, 100))
        assert region.clipped(Rect(50, 50, 200, 200)).area == 2500

    def test_snapped(self):
        region = R((1, 1, 9, 9))
        snapped = region.snapped(5)
        assert snapped == R((0, 0, 10, 10))

    def test_len_and_iter(self):
        region = R((0, 0, 10, 10), (20, 0, 30, 10))
        assert len(region) == 2
        assert len(list(iter(region))) == 2
