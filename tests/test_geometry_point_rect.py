"""Unit tests for Point and Rect."""

import pytest

from repro.geometry import Point, Rect


class TestPoint:
    def test_arithmetic(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(5, 5) - Point(2, 3) == Point(3, 2)
        assert -Point(1, -2) == Point(-1, 2)
        assert Point(2, 3) * 4 == Point(8, 12)
        assert 4 * Point(2, 3) == Point(8, 12)

    def test_distances(self):
        a, b = Point(0, 0), Point(3, 4)
        assert a.manhattan(b) == 7
        assert a.chebyshev(b) == 4
        assert a.euclidean2(b) == 25

    def test_unpacking_and_tuple(self):
        x, y = Point(7, 9)
        assert (x, y) == (7, 9)
        assert Point(7, 9).as_tuple() == (7, 9)

    def test_hashable(self):
        assert len({Point(1, 1), Point(1, 1), Point(2, 1)}) == 2

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)


class TestRect:
    def test_normalization(self):
        r = Rect(10, 20, 0, 5)
        assert (r.x0, r.y0, r.x1, r.y1) == (0, 5, 10, 20)

    def test_properties(self):
        r = Rect(0, 0, 10, 20)
        assert r.width == 10
        assert r.height == 20
        assert r.area == 200
        assert r.center == Point(5, 10)
        assert not r.is_degenerate

    def test_degenerate(self):
        assert Rect(0, 0, 0, 10).is_degenerate
        assert Rect(0, 0, 10, 0).is_degenerate

    def test_from_center_rejects_odd(self):
        with pytest.raises(ValueError):
            Rect.from_center(0, 0, 5, 4)

    def test_from_center(self):
        r = Rect.from_center(10, 10, 4, 6)
        assert r == Rect(8, 7, 12, 13)

    def test_corners_ccw(self):
        cs = Rect(0, 0, 2, 3).corners()
        assert cs == [Point(0, 0), Point(2, 0), Point(2, 3), Point(0, 3)]

    def test_containment(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(0, 0))
        assert not r.contains_point(Point(0, 0), strict=True)
        assert r.contains_rect(Rect(1, 1, 9, 9))
        assert not r.contains_rect(Rect(1, 1, 11, 9))

    def test_overlap_vs_touch(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(10, 0, 20, 10)  # shares an edge
        assert not a.overlaps(b)
        assert a.touches(b)
        c = Rect(9, 0, 20, 10)
        assert a.overlaps(c)

    def test_intersection(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersection(Rect(5, 5, 15, 15)) == Rect(5, 5, 10, 10)
        assert a.intersection(Rect(10, 0, 20, 10)) is None  # touch only
        assert a.intersection(Rect(20, 20, 30, 30)) is None

    def test_union_bbox(self):
        assert Rect(0, 0, 1, 1).union_bbox(Rect(5, 5, 6, 7)) == Rect(0, 0, 6, 7)

    def test_expanded_and_shrink(self):
        r = Rect(0, 0, 10, 10)
        assert r.expanded(5) == Rect(-5, -5, 15, 15)
        assert r.expanded(-2) == Rect(2, 2, 8, 8)
        assert r.expanded(1, 3) == Rect(-1, -3, 11, 13)
        with pytest.raises(ValueError):
            r.expanded(-6)

    def test_distance_chebyshev(self):
        a = Rect(0, 0, 10, 10)
        assert a.distance(Rect(20, 0, 30, 10)) == 10
        assert a.distance(Rect(20, 20, 30, 30)) == 10  # diagonal: max(dx, dy)
        assert a.distance(Rect(5, 5, 30, 30)) == 0
        assert a.euclidean_distance2(Rect(20, 20, 30, 30)) == 200

    def test_translated_scaled(self):
        assert Rect(0, 0, 1, 2).translated(10, 20) == Rect(10, 20, 11, 22)
        assert Rect(1, 1, 2, 2).scaled(3) == Rect(3, 3, 6, 6)
