"""Tests for connectivity extraction and LVS-lite comparison."""


from repro.designgen import via_chain
from repro.extract import (
    check_connectivity,
    electrical_hotspot_impact,
    extract_nets,
)
from repro.geometry import Point, Rect
from repro.layout import Cell
from repro.litho.hotspots import Hotspot, HotspotKind
from repro.litho.process import ProcessCondition


class TestBasicConnectivity:
    def test_two_isolated_wires(self, tech45):
        L = tech45.layers
        cell = Cell("X")
        cell.add_rect(L.metal1, Rect(0, 0, 1000, 45))
        cell.add_rect(L.metal1, Rect(0, 200, 1000, 245))
        netlist = extract_nets(cell, tech45)
        assert netlist.net_count() == 2
        assert not netlist.same_net(
            (L.metal1, Point(10, 20)), (L.metal1, Point(10, 220))
        )

    def test_via_joins_layers(self, tech45):
        L = tech45.layers
        cell = Cell("X")
        cell.add_rect(L.metal1, Rect(0, 0, 1000, 45))
        cell.add_rect(L.metal2, Rect(0, 0, 45, 1000))
        cell.add_rect(L.via1, Rect(0, 0, 45, 45))
        netlist = extract_nets(cell, tech45)
        assert netlist.same_net((L.metal1, Point(900, 20)), (L.metal2, Point(20, 900)))

    def test_no_via_no_connection(self, tech45):
        L = tech45.layers
        cell = Cell("X")
        cell.add_rect(L.metal1, Rect(0, 0, 1000, 45))
        cell.add_rect(L.metal2, Rect(0, 0, 45, 1000))
        netlist = extract_nets(cell, tech45)
        assert not netlist.same_net((L.metal1, Point(900, 20)), (L.metal2, Point(20, 900)))

    def test_gate_splits_diffusion(self, tech45):
        """Poly over active separates source from drain — the transistor."""
        L = tech45.layers
        cell = Cell("T")
        cell.add_rect(L.active, Rect(0, 0, 300, 100))
        cell.add_rect(L.poly, Rect(130, -50, 170, 150))
        netlist = extract_nets(cell, tech45)
        source = (L.active, Point(50, 50))
        drain = (L.active, Point(250, 50))
        gate = (L.poly, Point(150, -20))
        assert not netlist.same_net(source, drain)
        assert not netlist.same_net(source, gate)

    def test_contact_picks_poly_or_diffusion(self, tech45):
        L = tech45.layers
        cell = Cell("C")
        cell.add_rect(L.poly, Rect(0, 0, 100, 100))
        cell.add_rect(L.metal1, Rect(0, 0, 100, 100))
        cell.add_rect(L.contact, Rect(20, 20, 65, 65))
        netlist = extract_nets(cell, tech45)
        assert netlist.same_net((L.poly, Point(5, 5)), (L.metal1, Point(90, 90)))

    def test_probe_off_geometry(self, tech45):
        L = tech45.layers
        cell = Cell("E")
        cell.add_rect(L.metal1, Rect(0, 0, 10, 10))
        netlist = extract_nets(cell, tech45)
        assert netlist.net_of(L.metal1, Point(500, 500)) is None


class TestGeneratedDesigns:
    def test_via_chain_is_one_net(self, tech45):
        chain = via_chain(tech45, 10)
        netlist = extract_nets(chain.flattened(), tech45)
        L = tech45.layers
        bb = chain.bbox
        assert netlist.same_net(
            (L.metal1, Point(10, 30)), (L.metal1, Point(bb.x1 - 10, 30))
        )

    def test_router_connectivity(self, small_block, tech45):
        """Every routed net is electrically closed — the router's
        correctness proven by extraction, not just by DRC."""
        netlist = extract_nets(small_block.top.flattened(), tech45)
        L = tech45.layers
        assert small_block.routed_nets
        for src, dst in small_block.routed_nets:
            assert netlist.same_net((L.metal1, src.at), (L.metal1, dst.at)), (src, dst)

    def test_distinct_nets_stay_distinct(self, small_block, tech45):
        netlist = extract_nets(small_block.top.flattened(), tech45)
        L = tech45.layers
        groups: dict = {}
        for k, (src, dst) in enumerate(small_block.routed_nets):
            groups[f"n{k}"] = [(L.metal1, src.at), (L.metal1, dst.at)]
        report = check_connectivity(netlist, groups)
        assert report.opens == []
        assert report.missing == []
        # shorts only through legitimately shared pins
        endpoint_sets = {
            name: {(p.x, p.y) for _, p in probes} for name, probes in groups.items()
        }
        for a, b in report.shorts:
            assert endpoint_sets[a] & endpoint_sets[b], (a, b)


class TestCheckConnectivity:
    def test_detects_open(self, tech45):
        L = tech45.layers
        cell = Cell("O")
        cell.add_rect(L.metal1, Rect(0, 0, 100, 45))
        cell.add_rect(L.metal1, Rect(200, 0, 300, 45))
        netlist = extract_nets(cell, tech45)
        report = check_connectivity(
            netlist, {"net": [(L.metal1, Point(50, 20)), (L.metal1, Point(250, 20))]}
        )
        assert report.opens == ["net"]
        assert not report.ok

    def test_detects_short(self, tech45):
        L = tech45.layers
        cell = Cell("S")
        cell.add_rect(L.metal1, Rect(0, 0, 1000, 45))
        netlist = extract_nets(cell, tech45)
        report = check_connectivity(
            netlist,
            {
                "a": [(L.metal1, Point(10, 20))],
                "b": [(L.metal1, Point(900, 20))],
            },
        )
        assert report.shorts == [("a", "b")]

    def test_detects_missing(self, tech45):
        L = tech45.layers
        cell = Cell("M")
        cell.add_rect(L.metal1, Rect(0, 0, 10, 10))
        netlist = extract_nets(cell, tech45)
        report = check_connectivity(netlist, {"x": [(L.metal1, Point(999, 999))]})
        assert report.missing
        assert "FAIL" in report.summary()

    def test_clean(self, tech45):
        L = tech45.layers
        cell = Cell("OK")
        cell.add_rect(L.metal1, Rect(0, 0, 1000, 45))
        cell.add_rect(L.metal1, Rect(0, 200, 1000, 245))
        netlist = extract_nets(cell, tech45)
        report = check_connectivity(
            netlist,
            {
                "a": [(L.metal1, Point(10, 20)), (L.metal1, Point(990, 20))],
                "b": [(L.metal1, Point(10, 220))],
            },
        )
        assert report.ok


class TestElectricalImpact:
    def make_netlist(self, tech45):
        L = tech45.layers
        cell = Cell("EI")
        cell.add_rect(L.metal1, Rect(0, 0, 1000, 45))      # net A
        cell.add_rect(L.metal1, Rect(0, 100, 1000, 145))   # net B
        return extract_nets(cell, tech45), L

    def hotspot(self, kind, marker):
        return Hotspot(kind, marker, severity=100.0, condition=ProcessCondition())

    def test_killer_short(self, tech45):
        netlist, L = self.make_netlist(tech45)
        bridge = self.hotspot(HotspotKind.BRIDGE, Rect(400, 45, 500, 100))
        counts = electrical_hotspot_impact(netlist, [bridge], L.metal1)
        assert counts["killer_short"] == 1

    def test_benign_bridge(self, tech45):
        netlist, L = self.make_netlist(tech45)
        # a "bridge" entirely alongside net A touches only one net
        bridge = self.hotspot(HotspotKind.BRIDGE, Rect(400, 10, 500, 30))
        counts = electrical_hotspot_impact(netlist, [bridge], L.metal1)
        assert counts["benign_bridge"] == 1
        assert counts["killer_short"] == 0

    def test_potential_open(self, tech45):
        netlist, L = self.make_netlist(tech45)
        pinch = self.hotspot(HotspotKind.PINCH, Rect(400, 10, 450, 35))
        counts = electrical_hotspot_impact(netlist, [pinch], L.metal1)
        assert counts["potential_open"] == 1
