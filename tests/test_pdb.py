"""Tests for the pattern database: persistence and lifecycle."""

import pytest

from repro.geometry import Rect
from repro.layout import Cell
from repro.patterns import (
    PatternDatabase,
    kl_divergence,
    load_catalog,
    save_catalog,
    via_enclosure_catalog,
)


def build_catalog(tech45, styles=("sym", "eol")):
    L = tech45.layers
    cell = Cell("C")
    x = 0
    if "sym" in styles:
        for _ in range(5):
            cell.add_rect(L.via1, Rect(x, 0, x + 45, 45))
            cell.add_rect(L.metal1, Rect(x - 11, -11, x + 56, 56))
            x += 300
    if "eol" in styles:
        for _ in range(3):
            cell.add_rect(L.via1, Rect(x, 0, x + 45, 45))
            cell.add_rect(L.metal1, Rect(x, -11, x + 80, 56))
            x += 300
    return via_enclosure_catalog(cell, L.via1, L.metal1, radius=100)


class TestPersistence:
    def test_roundtrip(self, tech45, tmp_path):
        catalog = build_catalog(tech45)
        entry = catalog.entries()[0]
        entry.tags.add("hotspot")
        path = tmp_path / "pdb.json"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert len(loaded) == len(catalog)
        assert loaded.total == catalog.total
        assert loaded.frequencies() == catalog.frequencies()
        assert loaded.entries()[0].tags == {"hotspot"}

    def test_category_keys_stable(self, tech45, tmp_path):
        """The persistence property: a loaded pattern matches the same
        category as a freshly extracted one."""
        catalog = build_catalog(tech45)
        path = tmp_path / "pdb.json"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        fresh = build_catalog(tech45)
        assert kl_divergence(loaded, fresh) == pytest.approx(0.0, abs=1e-12)

    def test_dimension_vectors_preserved(self, tech45, tmp_path):
        catalog = build_catalog(tech45)
        path = tmp_path / "pdb.json"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert loaded.entries()[0].dimension_vectors == catalog.entries()[0].dimension_vectors


class TestLifecycle:
    def test_tracking_across_generations(self, tech45):
        pdb = PatternDatabase("fab")
        pdb.add_generation("testchip", build_catalog(tech45, ("sym", "eol")))
        pdb.add_generation("product1", build_catalog(tech45, ("sym", "eol")))
        pdb.add_generation("product2", build_catalog(tech45, ("sym",)))  # eol designed out
        records = pdb.lifecycles()
        assert len(records) == 2
        statuses = {tuple(r.counts): r.status for r in records}
        assert statuses[(5, 5, 5)] == "active"
        assert statuses[(3, 3, 0)] == "retired"

    def test_new_and_retired_queries(self, tech45):
        pdb = PatternDatabase()
        pdb.add_generation("g0", build_catalog(tech45, ("sym",)))
        pdb.add_generation("g1", build_catalog(tech45, ("sym", "eol")))
        pdb.add_generation("g2", build_catalog(tech45, ("sym",)))
        assert len(pdb.new_in("g1")) == 1
        assert len(pdb.retired_by("g2")) == 1
        assert len(pdb.retired_by("g1")) == 0

    def test_duplicate_generation_rejected(self, tech45):
        pdb = PatternDatabase()
        pdb.add_generation("g0", build_catalog(tech45))
        with pytest.raises(ValueError):
            pdb.add_generation("g0", build_catalog(tech45))

    def test_summary(self, tech45):
        pdb = PatternDatabase("x")
        pdb.add_generation("g0", build_catalog(tech45))
        assert "1 generations" in pdb.summary()

    def test_empty(self):
        assert PatternDatabase().lifecycles() == []
