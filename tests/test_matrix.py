"""Tests for the library compliance matrix (repro.matrix).

Covers abutment construction (exact edge-sharing, both flips), the
content-addressed scenario identity (stable across runs and hash
seeds), the dedup accounting, report reduction (verdicts, weak-pair
ranking, fix priority), and the acceptance-critical property: the
report is identical whether scenarios run in-process at jobs=1 or
jobs=4 or as a batched submit through a service.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.designgen import abut_cells, make_stdcell_library
from repro.matrix import (
    LibraryComplianceReport,
    MatrixSpec,
    enumerate_scenarios,
    run_matrix,
)
from repro.service import (
    ServiceClient,
    ServiceDaemon,
    SocketClient,
    VerificationService,
)
from repro.tech import make_node

REPO_ROOT = Path(__file__).resolve().parent.parent

# small but dedup-rich: INV_X2/BUF_X1/NAND2_X1 are geometric twins in
# the generated library, so duplicate abutment windows are guaranteed
SMALL = MatrixSpec(
    nodes=(45,), cells=("INV_X1", "INV_X2", "NAND2_X1"), corners=1
)


@pytest.fixture(scope="module")
def library():
    return make_stdcell_library(make_node(45))


class TestAbutment:
    def test_cells_share_exactly_one_edge(self, library):
        left = library["INV_X1"].cell
        right = library["NAND2_X1"].cell
        pair = abut_cells(left, right)
        lb, rb, pb = left.bbox, right.bbox, pair.bbox
        assert pb.x1 - pb.x0 == (lb.x1 - lb.x0) + (rb.x1 - rb.x0)
        assert pb.x0 == 0 and pb.y0 == 0

    def test_flip_preserves_width_and_mirrors_geometry(self, library):
        left = library["INV_X1"].cell
        right = library["NAND2_X1"].cell
        plain = abut_cells(left, right)
        flipped = abut_cells(left, right, flip_right=True)
        assert plain.bbox == flipped.bbox
        layer = make_node(45).layers.metal1
        boundary = left.bbox.x1 - left.bbox.x0
        # the right cell's content mirrors about its own center line:
        # same total area either way, different rect decomposition
        right_window = type(plain.bbox)(
            boundary, plain.bbox.y0, plain.bbox.x1, plain.bbox.y1
        )
        plain_right = plain.region(layer, right_window)
        flipped_right = flipped.region(layer, right_window)
        assert plain_right.area == flipped_right.area

    def test_no_gap_no_overlap(self, library):
        # area of the pair == sum of areas: overlap would shrink it
        # (merged), a gap cannot add area, so equality pins both
        left = library["INV_X1"].cell
        right = library["INV_X1"].cell
        layer = make_node(45).layers.metal1
        for flip in (False, True):
            pair = abut_cells(left, right, flip_right=flip)
            assert (
                pair.region(layer).area == 2 * left.region(layer).area
            ), f"flip_right={flip}"

    def test_empty_cell_rejected(self, library):
        from repro.layout import Cell

        with pytest.raises(ValueError):
            abut_cells(Cell("EMPTY"), library["INV_X1"].cell)


class TestScenarioIdentity:
    def test_enumeration_is_deterministic(self):
        first = enumerate_scenarios(SMALL)
        second = enumerate_scenarios(SMALL)
        assert [s.sid for s in first] == [s.sid for s in second]
        assert [s.key for s in first] == [s.key for s in second]

    def test_sids_unique_keys_shared(self):
        scenarios = enumerate_scenarios(SMALL)
        sids = [s.sid for s in scenarios]
        assert len(set(sids)) == len(sids)
        # geometric twins => strictly fewer distinct keys than rows
        assert len({s.key for s in scenarios}) < len(scenarios)

    def test_ids_stable_across_hash_seeds(self):
        script = (
            "from repro.matrix import MatrixSpec, enumerate_scenarios\n"
            "spec = MatrixSpec(nodes=(45,), cells=('INV_X1', 'INV_X2', "
            "'NAND2_X1'), corners=1)\n"
            "print('\\n'.join(s.sid for s in enumerate_scenarios(spec)))\n"
        )
        outputs = []
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=REPO_ROOT,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip() == "\n".join(s.sid for s in enumerate_scenarios(SMALL))

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError, match="unknown cells"):
            enumerate_scenarios(MatrixSpec(cells=("NO_SUCH_CELL",)))

    def test_bad_check_rejected(self):
        with pytest.raises(ValueError, match="unknown checks"):
            MatrixSpec(checks=("litho", "mystery"))


class TestRunMatrix:
    def test_report_shape_and_dedup_accounting(self):
        report = run_matrix(SMALL)
        assert isinstance(report, LibraryComplianceReport)
        assert report.scenario_count == len(enumerate_scenarios(SMALL))
        assert report.deduped > 0  # the twins guarantee shared windows
        assert report.unique_windows + report.deduped == report.scenario_count
        assert set(report.cell_verdicts) == set(SMALL.cells)
        for verdict in report.cell_verdicts.values():
            assert {"standalone_ok", "abutment_ok"} <= set(verdict)
        # weak pairs are unordered, ranked by findings descending
        finding_counts = [p["findings"] for p in report.weak_pairs]
        assert finding_counts == sorted(finding_counts, reverse=True)
        for pair in report.weak_pairs:
            assert pair["pair"] == sorted(pair["pair"])
        assert report.to_dict()["report"] == "LibraryComplianceReport"

    def test_path_independence(self):
        """The acceptance bar: identical report at jobs=1, jobs=4, and
        through a batched service submit (in-process and over a real
        socket)."""
        baseline = run_matrix(SMALL, jobs=1).comparable()
        assert run_matrix(SMALL, jobs=4).comparable() == baseline

        with VerificationService(jobs=1) as service:
            via_local = run_matrix(SMALL, client=ServiceClient(service))
        assert via_local.comparable() == baseline

        server = ServiceDaemon(VerificationService(jobs=1))
        thread = threading.Thread(target=server.serve_until_shutdown, daemon=True)
        thread.start()
        try:
            host, port = server.address
            with SocketClient(host, port) as client:
                via_socket = run_matrix(SMALL, client=client)
            assert via_socket.comparable() == baseline
        finally:
            SocketClient(*server.address).shutdown()
            thread.join(timeout=60)

    def test_report_json_round_trip(self):
        report = run_matrix(SMALL)
        doc = json.loads(report.to_json())
        assert doc["ok"] == report.ok
        assert doc["findings_count"] == report.findings_count
        assert doc["scenario_count"] == report.scenario_count

    def test_api_facade(self):
        from repro import api

        report = api.run_compliance_matrix(
            nodes=[45], cells=["INV_X1"], corners=1, checks=["dpt"]
        )
        assert isinstance(report, LibraryComplianceReport)
        assert report.scenario_count == 3  # standalone + self-pair x 2 flips
