"""Property-based fuzzing: random layouts round-trip through GDSII and
JSON byte-for-byte in geometry — and the two GDSII parsers (the in-RAM
:func:`read_gds` and the streaming :func:`scan_gds`) agree on every
flattened rect."""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.gdsii import read_gds, read_json, scan_gds, write_gds, write_json
from repro.gdsii.records import GdsFormatError
from repro.gdsii.stream import flatten
from repro.geometry import Orientation, Rect, Transform
from repro.layout import Layer, Layout

layer_strategy = st.sampled_from([Layer(10, 0, "M1"), Layer(12, 0, "M2"), Layer(3, 0, "POLY")])

rect_strategy = st.tuples(
    st.integers(-10000, 10000),
    st.integers(-10000, 10000),
    st.integers(1, 5000),
    st.integers(1, 5000),
).map(lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3]))


@st.composite
def layout_strategy(draw):
    lib = Layout("FUZZ")
    child = lib.new_cell("CHILD")
    for _ in range(draw(st.integers(1, 6))):
        child.add_rect(draw(layer_strategy), draw(rect_strategy))
    top = lib.new_cell("TOP")
    for _ in range(draw(st.integers(0, 3))):
        top.add_rect(draw(layer_strategy), draw(rect_strategy))
    n_refs = draw(st.integers(0, 3))
    for _ in range(n_refs):
        orient = draw(st.sampled_from(list(Orientation)))
        dx = draw(st.integers(-20000, 20000))
        dy = draw(st.integers(-20000, 20000))
        cols = draw(st.integers(1, 3))
        rows = draw(st.integers(1, 3))
        top.add_ref(
            child,
            Transform(dx, dy, orient),
            columns=cols,
            rows=rows,
            dx=draw(st.integers(1, 8000)) if cols > 1 else 0,
            dy=draw(st.integers(1, 8000)) if rows > 1 else 0,
        )
    return lib


LAYERS = [Layer(10, 0, "M1"), Layer(12, 0, "M2"), Layer(3, 0, "POLY")]


@given(layout_strategy())
@settings(max_examples=30, deadline=None)
def test_gds_roundtrip_geometry(tmp_path_factory, lib):
    path = tmp_path_factory.mktemp("fuzz") / "f.gds"
    write_gds(lib, path)
    loaded = read_gds(path)
    top = loaded.cell("TOP")
    for layer in LAYERS:
        assert top.region(layer) == lib.cell("TOP").region(layer)


@given(layout_strategy())
@settings(max_examples=30, deadline=None)
def test_json_roundtrip_geometry(tmp_path_factory, lib):
    path = tmp_path_factory.mktemp("fuzz") / "f.json"
    write_json(lib, path)
    loaded = read_json(path)
    top = loaded.cell("TOP")
    for layer in LAYERS:
        assert top.region(layer) == lib.cell("TOP").region(layer)


@given(layout_strategy())
@settings(max_examples=20, deadline=None)
def test_gds_deterministic_bytes(tmp_path_factory, lib):
    d = tmp_path_factory.mktemp("fuzz")
    p1, p2 = d / "a.gds", d / "b.gds"
    write_gds(lib, p1)
    write_gds(lib, p2)
    assert p1.read_bytes() == p2.read_bytes()


# -- both parsers, one truth ---------------------------------------------


def _stream_rects(path, cell_name):
    """Flattened rects per layer from the streaming parser."""
    stream_lib = scan_gds(path)
    out: dict[tuple[int, int], list[Rect]] = defaultdict(list)

    def emit(key, x0, y0, x1, y1):
        out[key].append(Rect(x0, y0, x1, y1))

    flatten(stream_lib, cell_name, emit)
    return out


def _assert_parsers_agree(path, cell_name, layers=LAYERS):
    """Identical flattened rect populations from both parsers."""
    loaded = read_gds(path)
    cell = loaded.cell(cell_name)
    streamed = _stream_rects(path, cell_name)
    for layer in layers:
        key = (layer.gds_layer, layer.gds_datatype)
        assert sorted(
            r.as_tuple() for r in streamed.get(key, [])
        ) == sorted(r.as_tuple() for r in cell.rects(layer))


@given(layout_strategy())
@settings(max_examples=30, deadline=None)
def test_both_parsers_same_rect_population(tmp_path_factory, lib):
    path = tmp_path_factory.mktemp("fuzz") / "f.gds"
    write_gds(lib, path)
    _assert_parsers_agree(path, "TOP")


def test_both_parsers_deep_sref_nesting(tmp_path):
    """A 40-deep SREF chain with mixed orientations flattens the same
    through composed transforms (read_gds) and the streaming emitter."""
    lib = Layout("DEEP")
    layer = Layer(10, 0, "M1")
    orients = list(Orientation)
    leaf = lib.new_cell("LEAF")
    leaf.add_rect(layer, Rect(5, -3, 40, 11))
    below = leaf
    for i in range(40):
        cell = lib.new_cell(f"LVL{i}")
        cell.add_rect(layer, Rect(0, 0, 7 + i, 9))
        cell.add_ref(below, Transform(13 * i - 60, 17 - 5 * i, orients[i % 8]))
        below = cell
    path = tmp_path / "deep.gds"
    write_gds(lib, path)
    _assert_parsers_agree(path, below.name, [layer])


@pytest.mark.parametrize("orient", list(Orientation))
def test_both_parsers_aref_lattice_all_orientations(tmp_path, orient):
    """A large AREF lattice under each of the eight placement
    orientations produces the same rect population from both parsers."""
    lib = Layout("LATTICE")
    layer = Layer(12, 0, "M2")
    bit = lib.new_cell("BIT")
    bit.add_rect(layer, Rect(2, 1, 30, 19))
    bit.add_rect(layer, Rect(10, -6, 18, 25))
    top = lib.new_cell("TOP")
    top.add_ref(
        bit, Transform(-45, 67, orient), columns=12, rows=9, dx=55, dy=40
    )
    path = tmp_path / "aref.gds"
    write_gds(lib, path)
    _assert_parsers_agree(path, "TOP", [layer])
    # the lattice really is 12 x 9 placements of 2 rects
    assert len(_stream_rects(path, "TOP")[(12, 0)]) == 12 * 9 * 2


def test_both_parsers_reject_truncated_records(tmp_path):
    """Cutting the byte stream mid-record is a format error in both the
    in-RAM and the streaming parser, never a silent partial parse."""
    lib = Layout("TRUNC")
    layer = Layer(10, 0, "M1")
    child = lib.new_cell("CHILD")
    child.add_rect(layer, Rect(0, 0, 100, 50))
    top = lib.new_cell("TOP")
    top.add_ref(child, Transform(10, 20, Orientation.R90), columns=2, rows=2, dx=200, dy=100)
    whole = tmp_path / "whole.gds"
    write_gds(lib, whole)
    data = whole.read_bytes()
    # GDSII records are even-length, so any odd cut lands mid-record:
    # inside the first header, inside a mid-file payload, shy of ENDLIB
    for cut in (5, (len(data) // 2) | 1, len(data) - 3):
        clipped = tmp_path / f"cut{cut}.gds"
        clipped.write_bytes(data[:cut])
        with pytest.raises(GdsFormatError):
            read_gds(clipped)
        with pytest.raises(GdsFormatError):
            scan_gds(clipped)
