"""Property-based fuzzing: random layouts round-trip through GDSII and
JSON byte-for-byte in geometry."""

from hypothesis import given, settings, strategies as st

from repro.gdsii import read_gds, read_json, write_gds, write_json
from repro.geometry import Orientation, Rect, Transform
from repro.layout import Layer, Layout

layer_strategy = st.sampled_from([Layer(10, 0, "M1"), Layer(12, 0, "M2"), Layer(3, 0, "POLY")])

rect_strategy = st.tuples(
    st.integers(-10000, 10000),
    st.integers(-10000, 10000),
    st.integers(1, 5000),
    st.integers(1, 5000),
).map(lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3]))


@st.composite
def layout_strategy(draw):
    lib = Layout("FUZZ")
    child = lib.new_cell("CHILD")
    for _ in range(draw(st.integers(1, 6))):
        child.add_rect(draw(layer_strategy), draw(rect_strategy))
    top = lib.new_cell("TOP")
    for _ in range(draw(st.integers(0, 3))):
        top.add_rect(draw(layer_strategy), draw(rect_strategy))
    n_refs = draw(st.integers(0, 3))
    for _ in range(n_refs):
        orient = draw(st.sampled_from(list(Orientation)))
        dx = draw(st.integers(-20000, 20000))
        dy = draw(st.integers(-20000, 20000))
        cols = draw(st.integers(1, 3))
        rows = draw(st.integers(1, 3))
        top.add_ref(
            child,
            Transform(dx, dy, orient),
            columns=cols,
            rows=rows,
            dx=draw(st.integers(1, 8000)) if cols > 1 else 0,
            dy=draw(st.integers(1, 8000)) if rows > 1 else 0,
        )
    return lib


LAYERS = [Layer(10, 0, "M1"), Layer(12, 0, "M2"), Layer(3, 0, "POLY")]


@given(layout_strategy())
@settings(max_examples=30, deadline=None)
def test_gds_roundtrip_geometry(tmp_path_factory, lib):
    path = tmp_path_factory.mktemp("fuzz") / "f.gds"
    write_gds(lib, path)
    loaded = read_gds(path)
    top = loaded.cell("TOP")
    for layer in LAYERS:
        assert top.region(layer) == lib.cell("TOP").region(layer)


@given(layout_strategy())
@settings(max_examples=30, deadline=None)
def test_json_roundtrip_geometry(tmp_path_factory, lib):
    path = tmp_path_factory.mktemp("fuzz") / "f.json"
    write_json(lib, path)
    loaded = read_json(path)
    top = loaded.cell("TOP")
    for layer in LAYERS:
        assert top.region(layer) == lib.cell("TOP").region(layer)


@given(layout_strategy())
@settings(max_examples=20, deadline=None)
def test_gds_deterministic_bytes(tmp_path_factory, lib):
    d = tmp_path_factory.mktemp("fuzz")
    p1, p2 = d / "a.gds", d / "b.gds"
    write_gds(lib, p1)
    write_gds(lib, p2)
    assert p1.read_bytes() == p2.read_bytes()
