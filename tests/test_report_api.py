"""The unified report API (:class:`repro.core.report.BaseReport`) and
the stable :mod:`repro.api` facade.

Every engine report shares one contract — ``ok``, ``findings_count``,
``summary()``, ``to_dict()``/``to_json()`` — and renamed legacy
attributes survive as properties that raise ``DeprecationWarning``.
"""

from __future__ import annotations

import inspect
import json

import pytest

from repro.cmp.fill import FillReport
from repro.cmp.smartfill import CouplingReport
from repro.core.report import BaseReport, jsonable
from repro.drc.violations import DrcReport, Violation
from repro.extract.compare import ConnectivityReport
from repro.geometry import Rect
from repro.litho.fullchip import FullChipScanReport
from repro.opc.orc import OrcReport
from repro.parallel import QuarantinedTile
from repro.tech.rules import WidthRule
from repro.yieldmodels.redundant_via import RedundantViaReport
from repro.yieldmodels.wire_spread import SpreadReport

ALL_REPORTS = [
    DrcReport,
    FullChipScanReport,
    OrcReport,
    ConnectivityReport,
    FillReport,
    CouplingReport,
    RedundantViaReport,
    SpreadReport,
]


def _violation(tech45):
    rule = WidthRule("M1.W", tech45.layers.metal1, 60)
    return Violation(rule, Rect(0, 0, 10, 10), measured=40.0)


class TestBaseReportContract:
    @pytest.mark.parametrize("cls", ALL_REPORTS)
    def test_every_report_subclasses_base(self, cls):
        assert issubclass(cls, BaseReport)

    @pytest.mark.parametrize("cls", ALL_REPORTS)
    def test_empty_report_is_ok(self, cls):
        report = cls()
        assert report.ok is True
        assert report.findings_count == 0
        assert isinstance(report.summary(), str)

    @pytest.mark.parametrize("cls", ALL_REPORTS)
    def test_to_dict_and_json(self, cls):
        report = cls()
        data = report.to_dict()
        assert data["report"] == cls.__name__
        assert data["ok"] is True
        assert data["findings_count"] == 0
        round_tripped = json.loads(report.to_json())
        assert round_tripped == json.loads(json.dumps(data))

    def test_findings_drive_ok(self, tech45):
        report = DrcReport(violations=[_violation(tech45)])
        assert report.ok is False
        assert report.findings_count == 1
        assert report.findings == report.violations

    def test_quarantine_forces_not_ok(self):
        report = FullChipScanReport(
            tiles=4, quarantined=[QuarantinedTile(2, "InjectedFault: x", 3)]
        )
        assert report.findings_count == 0  # no hotspots...
        assert report.ok is False  # ...but the run is incomplete

    def test_orc_findings_count_spans_all_failure_modes(self):
        assert OrcReport(epe_violations=2).findings_count == 2
        assert OrcReport(printing_srafs=1).findings_count == 1
        assert OrcReport().ok is True

    def test_redundant_via_unfixable_is_the_finding(self):
        assert RedundantViaReport(total_vias=5, inserted=4, unfixable=1).ok is False
        assert RedundantViaReport(total_vias=5, inserted=5).ok is True

    def test_connectivity_counts_all_defects(self):
        report = ConnectivityReport(opens=["a"], shorts=[("b", "c")], missing=["d"])
        assert report.findings_count == 3
        assert report.ok is False

    def test_to_dict_serializes_nested_values(self, tech45):
        report = DrcReport(
            cell_name="TOP",
            violations=[_violation(tech45)],
            quarantined=[QuarantinedTile(1, "err", 2)],
        )
        data = json.loads(report.to_json())
        assert data["cell_name"] == "TOP"
        assert data["violations"][0]["measured"] == 40.0
        assert data["quarantined"][0]["index"] == 1

    def test_jsonable_fallback_is_repr(self):
        assert jsonable(object) == repr(object)
        assert jsonable({3, 1, 2}) == [1, 2, 3]


class TestDeprecatedAliases:
    def test_elapsed_seconds_warns_and_forwards(self):
        report = DrcReport(elapsed_s=1.5)
        with pytest.deprecated_call():
            assert report.elapsed_seconds == 1.5
        with pytest.deprecated_call():
            report.elapsed_seconds = 2.0
        assert report.elapsed_s == 2.0

    def test_compute_seconds_warns(self):
        scan = FullChipScanReport(compute_s=3.0)
        with pytest.deprecated_call():
            assert scan.compute_seconds == 3.0

    def test_is_clean_warns_and_tracks_ok(self, tech45):
        report = DrcReport()
        with pytest.deprecated_call():
            assert report.is_clean is True
        report.violations.append(_violation(tech45))
        with pytest.deprecated_call():
            assert report.is_clean is False

    def test_orc_passed_warns(self):
        with pytest.deprecated_call():
            assert OrcReport().passed is True

    def test_connectivity_is_clean_warns(self):
        with pytest.deprecated_call():
            assert ConnectivityReport(opens=["x"]).is_clean is False

    def test_new_spellings_do_not_warn(self, recwarn):
        report = DrcReport(elapsed_s=1.0)
        assert report.ok is True
        assert report.elapsed_s == 1.0
        assert FullChipScanReport().ok is True
        deprecations = [w for w in recwarn if w.category is DeprecationWarning]
        assert deprecations == []


class TestApiFacade:
    def test_exports(self):
        from repro import api

        assert api.__all__ == [
            "run_drc", "scan_full_chip", "decompose", "scorecard", "ingest_store",
            "make_service", "run_compliance_matrix",
        ]
        for name in api.__all__:
            assert callable(getattr(api, name))

    @pytest.mark.parametrize(
        "name",
        [
            "run_drc", "scan_full_chip", "decompose", "scorecard", "ingest_store",
            "make_service", "run_compliance_matrix",
        ],
    )
    def test_options_are_keyword_only(self, name):
        from repro import api

        sig = inspect.signature(getattr(api, name))
        kinds = [p.kind for p in sig.parameters.values()]
        positional = [k for k in kinds if k is inspect.Parameter.POSITIONAL_OR_KEYWORD]
        assert len(positional) <= 2  # subject (+ deck/space): everything else keyword-only
        assert inspect.Parameter.KEYWORD_ONLY in kinds

    def test_run_drc_matches_engine(self, small_block, tech45):
        from repro import api
        from repro.drc import run_drc as engine_run_drc

        deck = tech45.rules.minimum()
        facade = api.run_drc(small_block.top, deck)
        direct = engine_run_drc(small_block.top, deck)
        assert facade.violations == direct.violations
        assert isinstance(facade, BaseReport)

    def test_scan_accepts_technology(self, tech45, stdlib45):
        from repro import api
        from repro.designgen import LogicBlockSpec, generate_logic_block

        spec = LogicBlockSpec(rows=1, row_width_nm=3000, net_count=3, seed=5)
        block = generate_logic_block(tech45, spec, stdlib45)
        m1 = block.top.region(tech45.layers.metal1)
        report = api.scan_full_chip(
            tech45, m1, tile_nm=1500, pinch_limit=tech45.metal_width // 2
        )
        assert isinstance(report, FullChipScanReport)
        assert report.tiles > 0

    def test_decompose_modes_share_shape(self, tech45):
        from repro import api
        from repro.designgen import line_grating

        lines = line_grating(tech45.metal_width, tech45.metal_pitch, 6, 1500)
        with_st = api.decompose(lines, int(1.3 * tech45.metal_space))
        without = api.decompose(lines, int(1.3 * tech45.metal_space), stitches=False)
        assert isinstance(with_st, tuple) and isinstance(without, tuple)
        assert without[1] == []
        assert with_st[0].ok == without[0].ok

    def test_top_level_exposes_api_and_base_report(self):
        import repro

        assert repro.api.run_drc is not None
        assert repro.BaseReport is BaseReport
