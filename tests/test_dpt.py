"""Unit tests for DPT decomposition, stitch insertion, and scoring."""

import pytest

from repro.dpt import (
    build_conflict_graph,
    decompose_dpt,
    decompose_with_stitches,
    score_decomposition,
)
from repro.geometry import Rect, Region


def parallel_lines(n, width=45, pitch=90, length=1000):
    return Region([Rect(i * pitch, 0, i * pitch + width, length) for i in range(n)])


def five_cycle():
    """Four vertical bars (outer two tall) + a strap touching only the
    outer bars: an odd 5-cycle fixable by one stitch in the strap."""
    bars = [
        Rect(0, 0, 45, 500),
        Rect(115, 0, 160, 300),
        Rect(230, 0, 275, 300),
        Rect(345, 0, 390, 500),
    ]
    strap = Rect(0, 555, 390, 600)
    return Region(bars + [strap])


def tight_triangle():
    return Region([Rect(0, 0, 50, 50), Rect(80, 0, 130, 50), Rect(40, 80, 90, 130)])


class TestConflictGraph:
    def test_edges_at_limit(self):
        region = parallel_lines(3, pitch=90)
        cg = build_conflict_graph(region, 46)  # gaps are 45 < 46
        assert cg.num_conflict_edges == 2

    def test_no_edges_when_spaced(self):
        region = parallel_lines(3, pitch=90)
        assert build_conflict_graph(region, 45).num_conflict_edges == 0

    def test_odd_cycle_witness(self):
        cg = build_conflict_graph(tight_triangle(), 60)
        cycles = cg.odd_cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) % 2 == 1
        assert len(cycles[0]) >= 3

    def test_five_cycle_witness(self):
        cg = build_conflict_graph(five_cycle(), 80)
        assert cg.num_conflict_edges == 5
        assert len(cg.odd_cycles()) == 1


class TestDecompose:
    def test_alternating_lines(self):
        result = decompose_dpt(parallel_lines(4), 80)
        assert result.ok
        colors = [result.coloring[i] for i in range(4)]
        assert colors in ([0, 1, 0, 1], [1, 0, 1, 0])

    def test_masks_partition(self):
        region = parallel_lines(4)
        result = decompose_dpt(region, 80)
        assert (result.mask_a | result.mask_b) == region
        assert (result.mask_a & result.mask_b).is_empty

    def test_masks_internally_legal(self):
        result = decompose_dpt(parallel_lines(6), 80)
        for mask in (result.mask_a, result.mask_b):
            assert build_conflict_graph(mask, 80).num_conflict_edges == 0

    def test_triangle_conflict_reported(self):
        result = decompose_dpt(tight_triangle(), 60)
        assert not result.ok
        assert result.num_conflicts == 1
        assert len(result.conflict_features) == 3

    def test_independent_features_single_mask_ok(self):
        region = parallel_lines(2, pitch=400)
        result = decompose_dpt(region, 80)
        assert result.ok

    def test_summary(self):
        text = decompose_dpt(parallel_lines(4), 80).summary()
        assert "4 features" in text


class TestStitches:
    def test_five_cycle_fixed_with_one_stitch(self):
        layout = five_cycle()
        result, stitches = decompose_with_stitches(layout, 80, stitch_overlap=30)
        assert result.ok
        assert len(stitches) == 1
        assert (result.mask_a | result.mask_b).covers(layout)

    def test_stitch_overlap_on_both_masks(self):
        layout = five_cycle()
        result, stitches = decompose_with_stitches(layout, 80, stitch_overlap=30)
        overlap = result.mask_a & result.mask_b
        assert not overlap.is_empty
        assert overlap.covers(Region(stitches[0].overlap) & layout)

    def test_masks_stay_legal_after_stitching(self):
        layout = five_cycle()
        result, _ = decompose_with_stitches(layout, 80, stitch_overlap=30)
        for mask in (result.mask_a, result.mask_b):
            assert build_conflict_graph(mask, 80).num_conflict_edges == 0

    def test_unfixable_triangle_reports_conflict(self):
        result, stitches = decompose_with_stitches(tight_triangle(), 60)
        assert not result.ok
        assert stitches == []

    def test_clean_layout_needs_no_stitches(self):
        result, stitches = decompose_with_stitches(parallel_lines(4), 80)
        assert result.ok
        assert stitches == []

    def test_stitch_properties(self):
        layout = five_cycle()
        _, stitches = decompose_with_stitches(layout, 80, stitch_overlap=30)
        stitch = stitches[0]
        assert stitch.overlap_area > 0
        # the overlap box lies on actual drawn geometry
        assert layout.covers(Region(stitch.overlap) & layout)
        assert not (Region(stitch.overlap) & layout).is_empty


class TestScore:
    def test_perfect_decomposition(self):
        result = decompose_dpt(parallel_lines(4), 80)
        score = score_decomposition(result, [])
        assert score.composite == pytest.approx(1.0, abs=0.05)
        assert score.balance == pytest.approx(1.0)

    def test_conflicts_penalized(self):
        result = decompose_dpt(tight_triangle(), 60)
        score = score_decomposition(result, [])
        assert score.conflict_score == 0.0
        assert score.composite < 0.8

    def test_stitches_penalized(self):
        layout = five_cycle()
        result, stitches = decompose_with_stitches(layout, 80, stitch_overlap=30)
        with_stitch = score_decomposition(result, stitches)
        without = score_decomposition(result, [])
        assert with_stitch.stitch_score < without.stitch_score

    def test_overlay_score(self):
        layout = five_cycle()
        result, stitches = decompose_with_stitches(layout, 80, stitch_overlap=30)
        big_ok = score_decomposition(result, stitches, min_overlap_area=10)
        too_small = score_decomposition(result, stitches, min_overlap_area=10**9)
        assert big_ok.overlay_score == 1.0
        assert too_small.overlay_score == 0.0

    def test_summary(self):
        result = decompose_dpt(parallel_lines(4), 80)
        assert "DPT score" in score_decomposition(result, []).summary()
