"""The parallel + incremental verification engine.

Covers the tile decomposition and seam-ownership rules, the worker-pool
executor's determinism (parallel == serial, exactly), the content-hash
incremental cache, and the seam/edge regressions that motivated the
engine: the corner-drop bug in full-chip scan ownership.
"""

from __future__ import annotations

import pytest

from repro.designgen import LogicBlockSpec, generate_logic_block
from repro.drc import run_drc
from repro.geometry import Rect, Region
from repro.litho import LithoModel, scan_full_chip
from repro.litho.hotspots import Hotspot, HotspotKind
from repro.litho.process import ProcessCondition
from repro.parallel import TileCache, TileExecutor, tile_grid
from repro.parallel.cache import digest_parts


def _double(payload, item):
    return payload * item


class TestTileGrid:
    def test_cores_partition_extent(self):
        extent = Rect(-100, -50, 4100, 3050)  # not a multiple of the tile
        tiles = tile_grid(extent, 1000, overlap_nm=200)
        assert sum(t.core.area for t in tiles) == extent.area
        union = Region([t.core for t in tiles])
        assert union == Region(extent)

    def test_windows_clamped_to_extent(self):
        extent = Rect(0, 0, 3000, 3000)
        for t in tile_grid(extent, 1000, overlap_nm=250):
            assert t.window.x0 >= extent.x0 and t.window.y0 >= extent.y0
            assert t.window.x1 <= extent.x1 and t.window.y1 <= extent.y1
            assert t.window.x0 <= t.core.x0 and t.window.x1 >= t.core.x1

    def test_deterministic_row_major_order(self):
        tiles = tile_grid(Rect(0, 0, 3000, 2000), 1000)
        assert [t.index for t in tiles] == list(range(6))
        assert tiles[0].core == Rect(0, 0, 1000, 1000)
        assert tiles[1].core == Rect(1000, 0, 2000, 1000)
        assert tiles[3].core == Rect(0, 1000, 1000, 2000)

    def test_every_point_has_exactly_one_owner(self):
        extent = Rect(0, 0, 2500, 2500)
        tiles = tile_grid(extent, 1000, overlap_nm=100)
        # seam points, interior points, and the full outer boundary
        probes = [(x, y) for x in (0, 500, 1000, 1999, 2000, 2500)
                  for y in (0, 500, 1000, 1999, 2000, 2500)]
        for x, y in probes:
            owners = [t.index for t in tiles if t.owns(x, y)]
            assert len(owners) == 1, f"point ({x}, {y}) owned by {owners}"

    def test_extreme_corner_owned(self):
        # regression: a marker centred exactly at (extent.x1, extent.y1)
        # used to fail all ownership conditions and was silently dropped
        extent = Rect(0, 0, 3000, 2000)
        tiles = tile_grid(extent, 1000)
        assert sum(t.owns(extent.x1, extent.y1) for t in tiles) == 1


class TestCornerDropRegression:
    def test_hotspot_at_exact_top_right_corner_is_reported(self, monkeypatch):
        """A hotspot centred exactly at (extent.x1, extent.y1) must survive
        the seam-ownership filter (it used to be dropped)."""
        extent = Rect(0, 0, 2000, 2000)
        corner = Hotspot(
            HotspotKind.PINCH,
            Rect(extent.x1, extent.y1, extent.x1, extent.y1),
            severity=100.0,
            condition=ProcessCondition(),
        )

        def fake_find_hotspots(model, drawn, window, **kwargs):
            if window.x1 == extent.x1 and window.y1 == extent.y1:
                return [corner]
            return []

        import repro.litho.fullchip as fullchip

        monkeypatch.setattr(fullchip, "find_hotspots", fake_find_hotspots)
        drawn = Region(Rect(0, 0, 2000, 2000))
        report = scan_full_chip(LithoModel(), drawn, extent, tile_nm=1000)
        assert report.tiles == 4
        assert len(report.hotspots) == 1
        assert report.hotspots[0].marker.center.x == extent.x1
        assert report.hotspots[0].marker.center.y == extent.y1


class TestTileExecutor:
    def test_serial_inline(self):
        assert TileExecutor(jobs=1).map(_double, 10, [1, 2, 3]) == [10, 20, 30]

    def test_parallel_preserves_order(self):
        items = list(range(40))
        out = TileExecutor(jobs=4, chunk_size=3).map(_double, 2, items)
        assert out == [2 * i for i in items]

    def test_zero_jobs_resolves_to_cpu_count(self):
        assert TileExecutor(jobs=0).jobs >= 1


class TestRegionDigest:
    def test_construction_invariant(self):
        a = Region([Rect(0, 0, 100, 100), Rect(100, 0, 200, 100)])
        b = Region(Rect(0, 0, 200, 100))
        assert a == b
        assert a.digest() == b.digest()

    def test_distinguishes_content(self):
        a = Region(Rect(0, 0, 100, 100))
        b = Region(Rect(0, 0, 100, 101))
        assert a.digest() != b.digest()

    def test_digest_parts_stable(self):
        assert digest_parts("x", 1, (2, 3)) == digest_parts("x", 1, (2, 3))
        assert digest_parts("x", 1) != digest_parts("x", 2)


class TestTileCache:
    def test_hit_miss_counters(self):
        cache = TileCache()
        assert cache.get("k") is None
        cache.put("k", [1, 2])
        assert cache.get("k") == [1, 2]
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_save_load_roundtrip(self, tmp_path):
        cache = TileCache()
        cache.put("k", [Rect(0, 0, 10, 10)])
        path = tmp_path / "cache.pkl"
        cache.save(path)
        loaded = TileCache.load(path)
        assert loaded.get("k") == [Rect(0, 0, 10, 10)]

    def test_load_missing_file_is_empty(self, tmp_path):
        cache = TileCache.load(tmp_path / "nope.pkl")
        assert len(cache) == 0

    def test_load_corrupt_file_is_empty(self, tmp_path):
        path = tmp_path / "cache.pkl"
        path.write_bytes(b"garbage not a pickle\n")
        cache = TileCache.load(path)
        assert len(cache) == 0

    def test_load_preversioned_file_is_discarded(self, tmp_path):
        # caches written before the format sentinel pickled the entry
        # dict bare; loading one must yield a full recompute (empty
        # cache + counter), never stale-shaped hits
        import pickle

        from repro.obs import MetricsRegistry, names, set_registry

        path = tmp_path / "cache.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"k": ["old-shaped-value"]}, fh)
        registry = MetricsRegistry(enabled=True)
        previous = set_registry(registry)
        try:
            cache = TileCache.load(path)
        finally:
            set_registry(previous)
        assert len(cache) == 0
        assert cache.get("k") is None
        assert (
            registry.snapshot()["counters"][names.TILECACHE_VERSION_MISMATCH]
            == 1
        )

    def test_load_future_version_is_discarded(self, tmp_path):
        import pickle

        path = tmp_path / "cache.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"format": "tilecache-v999", "entries": {"k": [1]}}, fh)
        cache = TileCache.load(path)
        assert len(cache) == 0

    def test_current_format_roundtrips_entries_exactly(self, tmp_path):
        cache = TileCache()
        cache.put("a", [Rect(0, 0, 5, 5)])
        cache.put("b", [])
        path = tmp_path / "cache.pkl"
        cache.save(path)
        loaded = TileCache.load(path)
        assert len(loaded) == 2
        assert loaded.get("a") == [Rect(0, 0, 5, 5)]
        assert loaded.get("b") == []


@pytest.fixture(scope="module")
def scan_setup(tech45, stdlib45):
    spec = LogicBlockSpec(rows=1, row_width_nm=4000, net_count=4, seed=3, weak_spots=3)
    block = generate_logic_block(tech45, spec, stdlib45)
    model = LithoModel(tech45.litho)
    m1 = block.top.region(tech45.layers.metal1)
    return tech45, block, model, m1


class TestParallelScan:
    @pytest.mark.parametrize("seed", [3, 19])
    def test_parallel_equals_serial_on_random_blocks(self, tech45, stdlib45, seed):
        """Property: for randomized designgen blocks, jobs=4 and jobs=1
        scans return identical hotspot populations."""
        spec = LogicBlockSpec(
            rows=1, row_width_nm=3500, net_count=4, seed=seed, weak_spots=2
        )
        block = generate_logic_block(tech45, spec, stdlib45)
        model = LithoModel(tech45.litho)
        m1 = block.top.region(tech45.layers.metal1)
        limit = tech45.metal_width // 2
        serial = scan_full_chip(model, m1, tile_nm=1200, pinch_limit=limit, jobs=1)
        parallel = scan_full_chip(model, m1, tile_nm=1200, pinch_limit=limit, jobs=4)
        assert serial.hotspots == parallel.hotspots
        assert serial.tiles == parallel.tiles

    def test_incremental_rescan_hits_every_tile(self, scan_setup):
        tech, block, model, m1 = scan_setup
        limit = tech.metal_width // 2
        cache = TileCache()
        first = scan_full_chip(model, m1, tile_nm=1200, pinch_limit=limit, cache=cache)
        second = scan_full_chip(model, m1, tile_nm=1200, pinch_limit=limit, cache=cache)
        assert first.tiles_computed == first.tiles
        assert second.tiles_computed == 0
        assert second.tiles_cached == second.tiles
        assert second.cache_hit_rate == 1.0
        assert second.hotspots == first.hotspots
        assert "hit rate" in second.summary()

    def test_local_edit_dirties_only_nearby_tiles(self, scan_setup):
        tech, block, model, m1 = scan_setup
        limit = tech.metal_width // 2
        extent = m1.bbox
        cache = TileCache()
        scan_full_chip(model, m1, extent, tile_nm=1200, pinch_limit=limit, cache=cache)
        # a local edit: new geometry in an empty spot near one corner
        patch = None
        for x in range(extent.x0, extent.x1 - 200, 100):
            candidate = Rect(x, extent.y0, x + 200, extent.y0 + 80)
            if (m1 & Region(candidate)).is_empty:
                patch = candidate
                break
        assert patch is not None, "no empty corner spot found"
        edited = m1 | Region(patch)
        assert edited != m1
        rescan = scan_full_chip(
            model, edited, extent, tile_nm=1200, pinch_limit=limit, cache=cache
        )
        assert 0 < rescan.tiles_computed < rescan.tiles
        fresh = scan_full_chip(model, edited, extent, tile_nm=1200, pinch_limit=limit)
        assert rescan.hotspots == fresh.hotspots


class TestParallelDrc:
    def test_parallel_equals_serial(self, small_block, tech45):
        deck = tech45.rules.minimum()
        serial = run_drc(small_block.top, deck, jobs=1, tile_nm=2500)
        parallel = run_drc(small_block.top, deck, jobs=4, tile_nm=2500)
        assert serial.violations == parallel.violations
        assert serial.tiles == parallel.tiles

    def test_tiled_agrees_with_single_pass_on_clean_block(self, small_block, tech45):
        deck = tech45.rules.minimum()
        flat = run_drc(small_block.top, deck)
        tiled = run_drc(small_block.top, deck, jobs=2, tile_nm=2500)
        assert flat.ok == tiled.ok

    def test_incremental_rerun_hits_every_task(self, small_block, tech45):
        deck = tech45.rules.minimum()
        cache = TileCache()
        first = run_drc(small_block.top, deck, tile_nm=2500, cache=cache)
        second = run_drc(small_block.top, deck, tile_nm=2500, cache=cache)
        assert second.tiles_computed == 0
        assert second.cache_hit_rate == 1.0
        assert second.violations == first.violations

    def test_tiled_finds_real_violations(self, tech45):
        from repro.layout import Layout

        lib = Layout("BAD")
        cell = lib.new_cell("TOP")
        cell.add_rect(tech45.layers.metal1, Rect(0, 0, 1000, 20))  # too narrow
        deck = tech45.rules.minimum()
        flat = run_drc(cell, deck)
        tiled = run_drc(cell, deck, jobs=2, tile_nm=600)
        assert not flat.ok
        assert not tiled.ok
        flat_rules = {v.rule.name for v in flat}
        tiled_rules = {v.rule.name for v in tiled}
        assert flat_rules == tiled_rules
