"""Yield learning across design generations: the pattern database story.

The flow foundries built around pattern databases:

1. extract the via-enclosure pattern catalog of each design generation,
2. persist it (pattern identity survives across chips),
3. track lifecycle — which categories are new, recurring, or designed
   out — and attach yield tags that carry forward,
4. triage the current design's litho hotspots *electrically* so the
   report counts killer defects, not raw markers,
5. quantify the timing margin corner signoff wastes vs statistics.

Run:  python examples/yield_learning.py
"""

from repro import LogicBlockSpec, generate_logic_block, make_node
from repro.analysis import Table
from repro.extract import electrical_hotspot_impact, extract_nets
from repro.litho import LithoModel, scan_full_chip
from repro.patterns import PatternDatabase, via_enclosure_catalog
from repro.timing import Stage, TimingPath
from repro.variation import statistical_path_delays


def main() -> None:
    tech = make_node(45)
    L = tech.layers

    # --- 1-3: catalogs across three design generations -----------------
    pdb = PatternDatabase("yield-learning")
    for label, seed, nets in (("testchip", 1, 10), ("productA", 2, 16), ("productB", 3, 24)):
        block = generate_logic_block(
            tech, LogicBlockSpec(rows=2, row_width_nm=6000, net_count=nets, seed=seed)
        )
        catalog = via_enclosure_catalog(block.top, L.via1, L.metal2, radius=100)
        pdb.add_generation(label, catalog)
    print(pdb.summary())
    table = Table("pattern lifecycle", ["category", "counts by generation", "status"])
    for record in pdb.lifecycles()[:8]:
        table.add_row(
            str(record.category_id),
            "/".join(str(c) for c in record.counts),
            record.status,
        )
    print(table.render())

    # --- 4: electrical triage of the newest design's hotspots ----------
    block = generate_logic_block(
        tech, LogicBlockSpec(rows=2, row_width_nm=6000, net_count=24, seed=3, weak_spots=6)
    )
    model = LithoModel(tech.litho)
    scan = scan_full_chip(
        model, block.top.region(L.metal1), tile_nm=4000, pinch_limit=tech.metal_width // 2
    )
    netlist = extract_nets(block.top.flattened(), tech)
    counts = electrical_hotspot_impact(netlist, scan.hotspots, L.metal1)
    print(f"\n{scan.summary()}")
    print("electrical triage:", counts)

    # --- 5: the statistical timing argument -----------------------------
    path = TimingPath("critical", [Stage(f"g{i}", 180, 35.0, wire_length_nm=300) for i in range(16)])
    result = statistical_path_delays(path, length_sigma_nm=5 / 3, worst_length_nm=40.0, n_samples=600)
    print(
        f"\n16-stage path: nominal {result.nominal_ps:.1f} ps, "
        f"corner {result.corner_ps:.1f} ps, sampled p99.9 {result.quantile_ps(0.999):.1f} ps "
        f"-> corner wastes {result.corner_margin_percent:.1f}% margin"
    )


if __name__ == "__main__":
    main()
