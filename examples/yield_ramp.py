"""Yield-ramp story: critical-area DFM across a defect-density sweep.

Early in a process ramp D0 is high and random defects dominate; as the
process matures D0 falls and the DFM payoff shrinks — exactly the
"depends where you are on the ramp" answer several panelists gave.

This example builds a dense serpentine monitor, applies the CAA
optimizations (spread, widen, and redundant vias on a routed block), and
prints the yield ladder at each D0.

Run:  python examples/yield_ramp.py
"""

from repro import LogicBlockSpec, generate_logic_block, make_node
from repro.analysis import Table
from repro.core import DesignContext, measure_design
from repro.geometry import Rect, Region
from repro.yieldmodels import (
    insert_redundant_vias,
    redistribute_channel,
    widen_wires,
    yield_negative_binomial,
)
from repro.yieldmodels.yield_model import layer_defect_lambda

DIE_SCALE = 2.0e12  # the channel pattern tiles a 0.02 cm^2 die


def main() -> None:
    tech = make_node(45)

    # --- wire-level CAA on a routing channel with white space ---------
    w, s = tech.metal_width, tech.metal_space
    pitch = w + s
    n = 24
    base = Region([Rect(0, i * pitch, 12000, i * pitch + w) for i in range(n)])
    channel_hi = int(n * w + (n - 1) * s * 1.9)  # ~90% gap headroom
    spread, s_report = redistribute_channel(base, s, 0, channel_hi)
    optimized, w_report = widen_wires(spread, s, tech.via_enclosure)
    print(s_report.summary())
    print(w_report.summary())

    scale = DIE_SCALE / base.bbox.area
    table = Table(
        "yield vs defect density (24-wire routing channel)",
        ["D0 (/cm2)", "Y baseline", "Y optimized", "gap (pts)"],
    )
    for d0 in (0.01, 0.03, 0.1, 0.3, 1.0, 3.0):
        lam_base = layer_defect_lambda(base, tech.defects, d0) * scale
        lam_opt = layer_defect_lambda(optimized, tech.defects, d0) * scale
        y_base = yield_negative_binomial(lam_base, 2.0)
        y_opt = yield_negative_binomial(lam_opt, 2.0)
        table.add_row(d0, y_base, y_opt, 100 * (y_opt - y_base))
    print()
    print(table.render())

    # --- via-level redundancy on a routed block -----------------------
    block = generate_logic_block(
        tech, LogicBlockSpec(rows=3, row_width_nm=8000, net_count=24, seed=5)
    )
    ctx = DesignContext.from_cell(block.top, tech)
    before = measure_design(ctx, d0_per_cm2=0.3)
    work = ctx.copy()
    rv1 = insert_redundant_vias(work.cell, tech, via_layer=tech.layers.via1)
    rv2 = insert_redundant_vias(work.cell, tech, via_layer=tech.layers.via2)
    work.invalidate()
    after = measure_design(work, d0_per_cm2=0.3)
    print()
    print(f"redundant vias: {rv1.inserted + rv2.inserted} inserted "
          f"({rv1.coverage:.0%} / {rv2.coverage:.0%} coverage)")
    print(f"via-failure lambda: {before.lambda_vias:.3g} -> {after.lambda_vias:.3g}")
    print(f"yield proxy: {before.yield_proxy:.4f} -> {after.yield_proxy:.4f}")


if __name__ == "__main__":
    main()
