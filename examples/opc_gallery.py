"""The OPC ladder: none -> rule -> model -> PW-aware model, with ORC.

Shows, on an isolated line with a line end (the hardest simple structure),
how each OPC generation improves printed fidelity: CD error at nominal,
line-end pullback, EPE statistics, and the ORC pass/fail verdict.

Run:  python examples/opc_gallery.py
"""

from repro import make_node
from repro.analysis import Table
from repro.geometry import Point, Rect, Region
from repro.litho import Cutline, LithoModel
from repro.litho.cd import line_end_pullback
from repro.opc import (
    ModelOpcSettings,
    apply_model_opc,
    apply_rule_opc,
    insert_srafs,
    verify_opc,
)


def main() -> None:
    tech = make_node(45)
    model = LithoModel(tech.litho)
    w = tech.metal_width

    drawn = Region(Rect(0, 0, w, 800))
    window = Rect(-150, -150, w + 150, 950)
    cut_cd = Cutline(Point(w // 2, 400))
    cut_end = Cutline(Point(w // 2, 400), horizontal=False)

    srafs = insert_srafs(drawn)
    masks = {"none": drawn}
    masks["rule"] = apply_rule_opc(drawn)
    masks["model"] = apply_model_opc(drawn, model, window).mask
    # production ordering: SRAFs first, then PW-aware model OPC iterates
    # with the bars in place (as frozen context)
    masks["pw-model+sraf"] = apply_model_opc(
        drawn, model, window, ModelOpcSettings(pw_aware=True, iterations=8),
        context=srafs,
    ).mask

    table = Table(
        f"OPC ladder on a {w} nm isolated line with a line end",
        ["opc", "CD (nm)", "pullback (nm)", "rms EPE", "max EPE", "hotspots", "ORC"],
    )
    for name, mask in masks.items():
        printed = model.print_contour(mask, window)
        cd = model.measure_cd(mask, cut_cd)
        pullback = line_end_pullback(printed, drawn, cut_end)
        report = verify_opc(model, mask, drawn, window, srafs=srafs if name != "none" else None)
        table.add_row(
            name,
            cd,
            float(pullback),
            report.rms_epe_nm,
            report.max_epe_nm,
            float(len(report.hotspots)),
            "PASS" if report.ok else "FAIL",
        )
    print(table.render())
    print(f"\n(SRAF bars inserted for the OPC'd masks: {len(srafs.components())}; "
          f"ORC confirms none of them print)")


if __name__ == "__main__":
    main()
