"""Double-patterning readiness: decompose, stitch, score, write masks.

Sweeps a brick-wall pattern through shrinking pitch against a fixed
single-exposure spacing limit, reporting when the layout stops being
two-colorable, where stitches rescue it, and how the compliance score
degrades.  The two exposure masks of the final decomposition are written
to GDSII as datatypes 1 and 2 of the metal layer.

Run:  python examples/double_patterning.py
"""

from repro import Layout, make_node, write_gds
from repro.analysis import Table
from repro.designgen import dpt_torture
from repro.dpt import build_conflict_graph, decompose_with_stitches, score_decomposition

SAME_MASK_SPACE = 100


def main() -> None:
    tech = make_node(32)

    table = Table(
        f"DPT readiness vs pitch (same-mask space {SAME_MASK_SPACE} nm)",
        ["pitch", "features", "conflict edges", "stitches", "unfixable", "score"],
    )
    last = None
    for pitch in (260, 220, 180, 140, 100, 80, 60):
        layout = dpt_torture(pitch, pitch // 2, rows=8)
        graph = build_conflict_graph(layout, SAME_MASK_SPACE)
        result, stitches = decompose_with_stitches(layout, SAME_MASK_SPACE)
        score = score_decomposition(result, stitches)
        table.add_row(
            float(pitch),
            float(len(result.features)),
            float(graph.num_conflict_edges),
            float(len(stitches)),
            float(result.num_conflicts),
            score.composite,
        )
        last = (pitch, result)
    print(table.render())

    # write the last decomposition's masks
    pitch, result = last
    lib = Layout(f"DPT_{pitch}")
    top = lib.new_cell("TOP")
    metal = make_node(32).layers.metal1
    mask_a = metal.with_datatype(1)
    mask_b = metal.with_datatype(2)
    top.add_region(mask_a, result.mask_a)
    top.add_region(mask_b, result.mask_b)
    write_gds(lib, "dpt_masks.gds")
    print(f"\nwrote dpt_masks.gds (pitch {pitch}: exposure A on {mask_a}, B on {mask_b})")
    print(result.summary())


if __name__ == "__main__":
    main()
