"""Fab-facing flows: design-rule exploration and defect-model fitting.

Two loops close between design and fab:

* **rule exploration** — which design rules actually cost area?  Sweep
  rule knobs, regenerate the standard cells, measure.  Rules with zero
  area sensitivity can be relaxed toward their recommended values for
  free yield.
* **defect-model fitting** — given comb/serpentine monitor fail counts
  from the line, fit (D0, x0) and predict the fail rate of a *new*
  monitor geometry before it is built.

Run:  python examples/rule_exploration.py
"""

import numpy as np

from repro import make_node
from repro.analysis import Table
from repro.designgen import comb_structure, serpentine
from repro.ruleopt import rule_area_sensitivity, sweep_rule_values
from repro.yieldmodels import (
    MonitorObservation,
    fit_defect_model,
    predict_fail_fraction,
)
from repro.yieldmodels.dsd import DefectSizeDistribution


def main() -> None:
    tech = make_node(45)

    # --- rule exploration ------------------------------------------------
    table = Table("rule area sensitivity (one-at-a-time DOE)", ["knob", "area %"])
    for knob, value in sorted(rule_area_sensitivity(tech).items(), key=lambda kv: -kv[1]):
        table.add_row(knob, value)
    print(table.render())

    sweep = sweep_rule_values(tech, "poly_pitch", [160, 180, 200, 220], litho_check=True)
    sweep_table = Table("poly-pitch sweep", ["pitch", "area um2", "DRC", "hotspots"])
    for point in sweep:
        sweep_table.add_row(
            float(point.overrides["poly_pitch"]),
            point.cell_area_um2,
            "clean" if point.drc_clean else "FAIL",
            float(point.hotspots),
        )
    print()
    print(sweep_table.render())

    # --- defect-model fitting ---------------------------------------------
    rng = np.random.default_rng(5)
    true_d0, true_x0, replicas, dies = 2.5, 45.0, 200_000, 20_000
    dsd_true = DefectSizeDistribution(true_x0, 1800)
    monitors = {
        "comb 25/25": comb_structure(25, 25, 40, 6000),
        "comb 45/45": comb_structure(45, 45, 30, 6000),
        "comb 90/90": comb_structure(90, 90, 20, 6000),
        "serp 45/90": serpentine(45, 90, 30, 6000),
    }
    observations = []
    for name, region in monitors.items():
        p = predict_fail_fraction(region, dsd_true, true_d0, replicas)
        fails = int(rng.binomial(dies, p))
        observations.append(MonitorObservation(name, region, dies, fails, replicas))
    fitted = fit_defect_model(observations, x0_grid_nm=[30, 38, 45, 55, 70], x_max_nm=1800)
    print(f"\nfitted defect model: D0 = {fitted.d0_per_cm2:.2f}/cm^2, x0 = {fitted.x0_nm:g} nm "
          f"(truth: {true_d0}, {true_x0})")

    # predict an unbuilt monitor
    new_monitor = comb_structure(65, 65, 24, 6000)
    dsd_fit = DefectSizeDistribution(fitted.x0_nm, 1800)
    predicted = predict_fail_fraction(new_monitor, dsd_fit, fitted.d0_per_cm2, replicas)
    actual = predict_fail_fraction(new_monitor, dsd_true, true_d0, replicas)
    print(f"unbuilt 65/65 comb: predicted fail {predicted:.3%} vs true-model {actual:.3%}")


if __name__ == "__main__":
    main()
