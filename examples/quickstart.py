"""Quickstart: the whole platform in sixty lines.

Builds a small standard-cell logic block at a generic 45 nm node, checks
it (DRC + litho), measures its yield proxy, runs the hit-or-hype
evaluation over the full DFM technique catalog, and writes the layout to
GDSII.

Run:  python examples/quickstart.py
"""

from repro import (
    LogicBlockSpec,
    evaluate_techniques,
    generate_logic_block,
    make_node,
    run_drc,
    write_gds,
)
from repro.core import DesignContext, measure_design


def main() -> None:
    # 1. a technology and a design
    tech = make_node(45)
    print(f"technology: {tech}")
    spec = LogicBlockSpec(rows=3, row_width_nm=8000, net_count=16, seed=7, weak_spots=12)
    block = generate_logic_block(tech, spec)
    print(f"design: {block.cell_count} cells, {block.net_count} routed nets, "
          f"bbox {block.top.bbox.as_tuple()}")

    # 2. sign-off checks
    report = run_drc(block.top, tech.rules.minimum().for_layer(tech.layers.metal2))
    print(f"DRC (M2 minimum rules): {'CLEAN' if report.ok else report.summary()}")

    # 3. manufacturability measurement (defects + vias + litho + CMP)
    ctx = DesignContext.from_cell(block.top, tech)
    metrics = measure_design(ctx, d0_per_cm2=1.0)
    print(metrics.summary())

    # 4. the paper's question: which DFM techniques pay for themselves?
    card = evaluate_techniques(block.top, tech, d0_per_cm2=1.0)
    print()
    print(card.render())

    # 5. persist the layout
    write_gds(block.layout, "quickstart_block.gds")
    print("\nwrote quickstart_block.gds")


if __name__ == "__main__":
    main()
