"""DRC-Plus construction flow: from litho hotspots to a pattern library.

The workflow the 2008-era foundries built (and the panel called a hit):

1. run model-based litho verification on a test design,
2. cluster the hotspot snippets into classes,
3. store each class in the pattern library (the PDB),
4. scan a *new* design with the library — catching weak spots without
   re-running simulation,
5. auto-fix the hits with mask-side retargeting and confirm the fix.

Run:  python examples/drc_plus_flow.py
"""

from repro import LogicBlockSpec, generate_logic_block, make_node
from repro.core.techniques import _extend_line_ends
from repro.geometry import Rect
from repro.litho import LithoModel, find_hotspots
from repro.patterns import (
    PatternCatalog,
    PatternMatcher,
    cluster_snippets,
    extract_snippets,
)

RADIUS = 120


def hotspots_of(tech, block):
    model = LithoModel(tech.litho)
    bb = block.top.bbox
    window = Rect(bb.x0, bb.y0, bb.x1, bb.y1)
    m1 = block.top.region(tech.layers.metal1)
    return find_hotspots(model, m1, window, pinch_limit=tech.metal_width // 2), window


def main() -> None:
    tech = make_node(45)
    L = tech.layers

    # -- 1. litho verification on the test design ----------------------
    test_chip = generate_logic_block(
        tech, LogicBlockSpec(rows=2, row_width_nm=6000, net_count=8, seed=21, weak_spots=8)
    )
    hotspots, _ = hotspots_of(tech, test_chip)
    print(f"test design: {len(hotspots)} litho hotspots found")

    # -- 2. classify them ------------------------------------------------
    anchors = [h.marker.center for h in hotspots]
    snippets = extract_snippets(test_chip.top, [L.metal1], anchors, RADIUS)
    clusters = cluster_snippets(snippets, threshold=0.6)
    print(f"clustered into {len(clusters)} hotspot classes "
          f"(sizes: {sorted((len(c) for c in clusters), reverse=True)[:8]} ...)")

    # -- 3. build the pattern library (PDB) -----------------------------
    catalog = PatternCatalog("pdb")
    matcher = PatternMatcher(radius=RADIUS)
    for snippet in snippets:
        entry = catalog.add_snippet(snippet)
        entry.tags.add("hotspot")
        matcher.add_snippet(snippet, severity="error", fix_hint="extend line end on mask")
    print(catalog.summary(top=5))

    # -- 4. scan a new product design without simulation ---------------
    product = generate_logic_block(
        tech, LogicBlockSpec(rows=2, row_width_nm=6000, net_count=8, seed=22, weak_spots=8)
    )
    product_hotspots, window = hotspots_of(tech, product)
    product_anchors = [h.marker.center for h in product_hotspots]
    matches = matcher.scan(product.top, [L.metal1], product_anchors)
    recall = len({m.anchor for m in matches}) / max(len(product_anchors), 1)
    print(f"\nproduct design: library flags {len({m.anchor for m in matches})} of "
          f"{len(product_anchors)} hotspot sites (recall {recall:.0%}) — no simulation needed")

    # -- 5. auto-fix: mask-side tip retargeting -------------------------
    m1 = product.top.region(L.metal1)
    mask, fixed = _extend_line_ends(
        m1, int(1.5 * tech.metal_width), max(tech.node_nm // 6, 5), int(0.6 * tech.metal_space)
    )
    model = LithoModel(tech.litho)
    after = find_hotspots(model, m1, window, mask=mask, pinch_limit=tech.metal_width // 2)
    print(f"auto-fix retargeted {fixed} tips: hotspots {len(product_hotspots)} -> {len(after)}")


if __name__ == "__main__":
    main()
