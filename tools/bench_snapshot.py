"""Distill a pytest-benchmark JSON into a compact perf snapshot.

Usage:
    python tools/bench_snapshot.py
    python tools/bench_snapshot.py --out BENCH_42.json
    python tools/bench_snapshot.py --from-json bench-fullchip.json --out BENCH_42.json

Without ``--from-json`` the tool runs the perf-tracked benches itself
(the full-chip scan bench and the verification-service churn bench) and
then distills the result.  The snapshot keeps one entry per bench —
wall time plus every ``extra_info`` scalar or flat numeric dict the
bench recorded (tiles/s, fast-path speedup, raster-reuse rate,
cache-key timings, engine counters, the A3z ``payload_bytes`` rows
guarding the zero-copy payload path, and the S1 service p50/p99 and
store-hit-rate rows) — so the perf trajectory can be diffed run over
run without hauling the full pytest-benchmark payload around.

The output name is not fixed: ``--out`` wins, else ``$GITHUB_RUN_NUMBER``
derives ``BENCH_<run>.json`` (what CI uploads), else ``BENCH_local.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BENCHES = (
    "benchmarks/bench_fullchip_scan.py",
    "benchmarks/bench_service.py",
    "benchmarks/bench_matrix.py",
)


def default_out() -> str:
    """Snapshot name for this run: numbered in CI, 'local' elsewhere."""
    run = os.environ.get("GITHUB_RUN_NUMBER", "").strip()
    return f"BENCH_{run}.json" if run else "BENCH_local.json"


def run_bench(benches: list[str], json_path: Path) -> None:
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *benches,
        "-q",
        "--benchmark-only",
        f"--benchmark-json={json_path}",
    ]
    env = {**os.environ, "PYTHONPATH": "src"}
    result = subprocess.run(cmd, cwd=REPO, env=env)
    if result.returncode != 0:
        raise SystemExit(f"bench run failed with exit code {result.returncode}")


def distill(raw: dict) -> dict:
    machine = raw.get("machine_info", {})
    snapshot = {
        "source": "pytest-benchmark",
        "python": machine.get("python_version"),
        "cpu_count": machine.get("cpu", {}).get("count") if isinstance(machine.get("cpu"), dict) else None,
        "benchmarks": {},
    }
    for bench in raw.get("benchmarks", []):
        entry = {"wall_s": round(bench["stats"]["mean"], 4)}
        for key, value in sorted(bench.get("extra_info", {}).items()):
            # keep scalars and flat counter dicts; drop anything deeper
            if isinstance(value, (int, float, str, bool)):
                entry[key] = value
            elif isinstance(value, dict) and all(
                isinstance(v, (int, float)) for v in value.values()
            ):
                entry[key] = value
        snapshot["benchmarks"][bench["name"]] = entry
    return snapshot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        help="snapshot output path (default: BENCH_$GITHUB_RUN_NUMBER.json "
        "in CI, BENCH_local.json elsewhere)",
    )
    parser.add_argument(
        "--from-json",
        default=None,
        help="existing pytest-benchmark JSON to distill (skips running the bench)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        default=None,
        help="bench file to run; repeatable "
        f"(default: {', '.join(DEFAULT_BENCHES)})",
    )
    args = parser.parse_args()

    if args.from_json:
        raw_path = Path(args.from_json)
    else:
        raw_path = Path(tempfile.mkdtemp()) / "bench.json"
        run_bench(args.bench or list(DEFAULT_BENCHES), raw_path)

    raw = json.loads(raw_path.read_text())
    snapshot = distill(raw)
    out = Path(args.out or default_out())
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=False) + "\n")
    names = ", ".join(snapshot["benchmarks"]) or "none"
    print(f"wrote {out} ({names})")


if __name__ == "__main__":
    main()
