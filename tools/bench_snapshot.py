"""Distill a pytest-benchmark JSON into a compact perf snapshot.

Usage:
    python tools/bench_snapshot.py --out BENCH_PR6.json
    python tools/bench_snapshot.py --from-json bench-fullchip.json --out BENCH_PR6.json

Without ``--from-json`` the tool runs the full-chip scan bench itself
(``benchmarks/bench_fullchip_scan.py``) and then distills the result.
The snapshot keeps one entry per bench — wall time plus every
``extra_info`` scalar or flat numeric dict the bench recorded (tiles/s,
fast-path speedup, raster-reuse rate, cache-key timings, engine
counters, and the A3z ``payload_bytes`` per-chip-size rows guarding the
zero-copy shared-memory payload path) — so the perf trajectory can be
diffed PR over PR without hauling the full pytest-benchmark payload
around.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BENCH = "benchmarks/bench_fullchip_scan.py"


def run_bench(bench: str, json_path: Path) -> None:
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        bench,
        "-q",
        "--benchmark-only",
        f"--benchmark-json={json_path}",
    ]
    env = {**os.environ, "PYTHONPATH": "src"}
    result = subprocess.run(cmd, cwd=REPO, env=env)
    if result.returncode != 0:
        raise SystemExit(f"bench run failed with exit code {result.returncode}")


def distill(raw: dict) -> dict:
    machine = raw.get("machine_info", {})
    snapshot = {
        "source": "pytest-benchmark",
        "python": machine.get("python_version"),
        "cpu_count": machine.get("cpu", {}).get("count") if isinstance(machine.get("cpu"), dict) else None,
        "benchmarks": {},
    }
    for bench in raw.get("benchmarks", []):
        entry = {"wall_s": round(bench["stats"]["mean"], 4)}
        for key, value in sorted(bench.get("extra_info", {}).items()):
            # keep scalars and flat counter dicts; drop anything deeper
            if isinstance(value, (int, float, str, bool)):
                entry[key] = value
            elif isinstance(value, dict) and all(
                isinstance(v, (int, float)) for v in value.values()
            ):
                entry[key] = value
        snapshot["benchmarks"][bench["name"]] = entry
    return snapshot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_PR6.json", help="snapshot output path")
    parser.add_argument(
        "--from-json",
        default=None,
        help="existing pytest-benchmark JSON to distill (skips running the bench)",
    )
    parser.add_argument(
        "--bench",
        default=DEFAULT_BENCH,
        help=f"bench file to run (default: {DEFAULT_BENCH})",
    )
    args = parser.parse_args()

    if args.from_json:
        raw_path = Path(args.from_json)
    else:
        raw_path = Path(tempfile.mkdtemp()) / "bench.json"
        run_bench(args.bench, raw_path)

    raw = json.loads(raw_path.read_text())
    snapshot = distill(raw)
    out = Path(args.out)
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=False) + "\n")
    names = ", ".join(snapshot["benchmarks"]) or "none"
    print(f"wrote {out} ({names})")


if __name__ == "__main__":
    main()
