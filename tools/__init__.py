"""Repository tooling: benchmarking snapshots, doc generation, linting."""
