"""RL009 — resource lifecycle: acquisitions must reach release on every path.

The resources this codebase leaks when it gets this wrong are not
garbage-collected away: a ``SharedMemory`` segment outlives the process
in ``/dev/shm`` until unlinked, an unclosed ``Pool`` leaves worker
processes behind, an unclosed socket pins the daemon's connection slot.
The walker (:func:`tools.repro_lint.dataflow.find_resource_leaks`)
accepts any of the idioms the codebase actually uses — ``with``,
release in a ``finally``, or ownership transfer to an object whose
``close()`` takes over — and flags the rest, including the subtle case
where the success path transfers ownership but an exception between
acquisition and hand-off leaks the resource.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.dataflow import find_resource_leaks
from tools.repro_lint.engine import FileContext, Rule, Violation, register


@register
class ResourceLifecycleRule(Rule):
    id = "RL009"
    name = "resource-lifecycle"
    summary = (
        "SharedMemory/mmap/socket/Pool/file acquisitions must reach "
        "close/unlink/terminate on every path: use a context manager, a "
        "finally, or transfer ownership"
    )

    MESSAGES = {
        "exception-path": (
            "{factory}() result '{var}' leaks on the exception path: a "
            "failure after acquisition reaches a handler that never "
            "releases it; close/unlink it in the except block or a finally"
        ),
        "success-path-only": (
            "{factory}() result '{var}' is released only on the success "
            "path; move the release into a finally or use a context manager"
        ),
        "never-released": (
            "{factory}() result '{var}' never reaches a release on any "
            "path; use a context manager, a finally, or transfer ownership "
            "to an object that closes it"
        ),
    }

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for leak in find_resource_leaks(node):
                yield self.violation(
                    ctx,
                    leak.node,
                    self.MESSAGES[leak.reason].format(
                        factory=leak.factory, var=leak.var
                    ),
                )
