"""Shared flow analyses for the project-wide rules (RL008–RL010).

Three walkers live here, all pure-AST (the analyzed code is never
imported), all deliberately path-*insensitive* except where the rule
demands otherwise:

* **Determinism taints** — the RL002 source catalogue (wall clock,
  process-global ``random``, ``id()``-keyed lookups, bare set
  iteration) factored out of the rule so :mod:`tools.repro_lint.project`
  can record the same taints per function and RL010 can propagate them
  through the call graph.
* **Class concurrency walker** — for a class that constructs a
  ``threading`` lock, every ``self.<attr>`` access and every call is
  recorded together with whether a ``with self.<lock>`` block was held
  at that point.  RL008 consumes the events; the facts extractor
  serializes the subset the cross-class deadlock check needs.
* **Resource acquire/release walker** — a path-sensitive look at
  ``x = SharedMemory(...)``-style acquisitions: safe when with-managed,
  released in a ``finally``, or ownership-transferred (returned, stored,
  passed along); otherwise RL009 flags the leaking path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

# ---------------------------------------------------------------------------
# determinism taints (the RL002 source catalogue)

WALL_CLOCK = frozenset({"time", "time_ns"})
DATETIME_NOW = frozenset({"now", "utcnow", "today"})
GLOBAL_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
    }
)


def names_imported_from(tree: ast.AST, module: str) -> frozenset[str]:
    """Local names bound by ``from <module> import ...`` anywhere in ``tree``."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            out.update(alias.asname or alias.name for alias in node.names)
    return frozenset(out)


def is_id_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


def is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@dataclass(frozen=True)
class Taint:
    """One determinism hazard: where, what kind, and the human message."""

    node: ast.AST
    kind: str  # wall-clock | global-random | id-key | set-iteration
    message: str


def iter_taints(root: ast.AST, random_imports: frozenset[str]) -> Iterator[Taint]:
    """Every RL002-class determinism taint in ``root`` (full subtree walk).

    The messages are the canonical RL002 wording; RL010 appends the
    interprocedural chain that made a non-worker function reachable.
    """
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                module, attr = func.value.id, func.attr
                if module == "time" and attr in WALL_CLOCK:
                    yield Taint(
                        node,
                        "wall-clock",
                        f"time.{attr}() reads the wall clock in worker code; "
                        "results must not depend on when a tile ran "
                        "(time.perf_counter() durations fed to timers are fine)",
                    )
                elif module in {"datetime", "date"} and attr in DATETIME_NOW:
                    yield Taint(
                        node,
                        "wall-clock",
                        f"{module}.{attr}() reads the wall clock in worker code",
                    )
                elif module == "random" and attr in GLOBAL_RANDOM:
                    yield Taint(
                        node,
                        "global-random",
                        f"random.{attr}() uses the process-global generator, "
                        "which is seeded per worker; pass a seeded "
                        "random.Random instead",
                    )
            elif isinstance(func, ast.Name) and func.id in random_imports:
                yield Taint(
                    node,
                    "global-random",
                    f"{func.id}() from the random module uses the "
                    "process-global generator; pass a seeded random.Random "
                    "instead",
                )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and is_id_call(key):
                    yield Taint(
                        key,
                        "id-key",
                        "id()-keyed dict is address-dependent and differs "
                        "between workers; key by a stable identity",
                    )
        elif isinstance(node, ast.DictComp):
            if is_id_call(node.key):
                yield Taint(
                    node.key,
                    "id-key",
                    "id()-keyed dict is address-dependent and differs "
                    "between workers; key by a stable identity",
                )
        elif isinstance(node, ast.Compare):
            if is_id_call(node.left) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                yield Taint(
                    node.left,
                    "id-key",
                    "id()-keyed membership test is address-dependent and "
                    "differs between workers; key by a stable identity",
                )
        elif isinstance(node, ast.Subscript):
            if is_id_call(node.slice):
                yield Taint(
                    node.slice,
                    "id-key",
                    "id()-keyed lookup is address-dependent and differs "
                    "between workers; key by a stable identity",
                )
        elif isinstance(node, (ast.For, ast.comprehension)):
            if is_set_expr(node.iter):
                yield Taint(
                    node.iter,
                    "set-iteration",
                    "iteration over a set has no deterministic order; "
                    "wrap in sorted(...) before iterating in worker code",
                )


# ---------------------------------------------------------------------------
# class concurrency walker (RL008)

#: ``self.X = threading.<factory>(...)`` makes X a lock attribute.
LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: receiver-method calls that mutate a container in place; a call
#: ``self.X.append(...)`` counts as a *write* to X.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "appendleft",
        "popleft",
        "sort",
        "reverse",
    }
)

#: methods whose unlocked accesses are always fine: construction and
#: teardown run before/after the object is shared between threads.
EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__del__"})


@dataclass(frozen=True)
class AttrEvent:
    """One ``self.<attr>`` access inside a method (or nested closure)."""

    attr: str
    write: bool
    locked: bool
    method: str
    node: ast.AST


@dataclass(frozen=True)
class CallEvent:
    """One call inside a method, with the lock state at the call site.

    ``kind`` mirrors :class:`tools.repro_lint.project.CallSite`:
    ``self`` (``self.m()``), ``selfattr`` (``self.x.m()``), ``typed``
    (``v.m()`` where ``v = ClassName(...)`` locally), ``name``
    (``f()``), ``dotted`` (``mod.f()``).
    """

    kind: str
    target: str
    attr: str
    locked: bool
    method: str
    node: ast.AST


@dataclass
class ClassLockInfo:
    """Everything RL008 needs to know about one lock-owning class."""

    node: ast.ClassDef
    name: str
    lock_attrs: set[str] = field(default_factory=set)
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: set[str] = field(default_factory=set)
    #: methods whose body acquires one of the class's own locks
    locking_methods: set[str] = field(default_factory=set)
    events: list[AttrEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)

    def guarded_attrs(self) -> set[str]:
        """Attributes ever *written* under the lock (outside ``__init__``)."""
        return {
            e.attr
            for e in self.events
            if e.write and e.locked and e.attr not in self.lock_attrs
        }

    def locked_helper_methods(self) -> set[str]:
        """Private methods that only ever run with the lock already held.

        A method qualifies when every intra-class ``self.m()`` call site
        is under the lock (directly or inside another qualifying
        helper).  Computed to a fixed point so helpers calling helpers
        resolve.  Public methods never qualify: an external caller can
        always invoke them unlocked.
        """
        sites: dict[str, list[CallEvent]] = {}
        for call in self.calls:
            if call.kind == "self" and call.target in self.methods:
                sites.setdefault(call.target, []).append(call)
        helpers = {
            name
            for name in sites
            if name.startswith("_") and not name.startswith("__")
        }
        locked = set(helpers)
        changed = True
        while changed:
            changed = False
            for name in list(locked):
                ok = all(
                    c.locked or c.method in locked for c in sites[name]
                )
                if not ok:
                    locked.discard(name)
                    changed = True
        return locked


def _is_self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``"X"``, anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_factory_call(node: ast.expr) -> bool:
    """Is this expression a ``threading.Lock()``-style constructor call?"""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in LOCK_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in LOCK_FACTORIES
    return False


def class_name_call(node: ast.expr | None) -> str | None:
    """``ClassName(...)`` / ``mod.ClassName(...)`` -> ``"ClassName"``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name and name[:1].isupper():
        return name
    return None


def single_assignment(
    node: ast.AST,
) -> tuple[ast.expr | None, ast.expr | None]:
    """(target, value) for a one-target Assign or a valued AnnAssign."""
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        return node.targets[0], node.value
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        return node.target, node.value
    return None, None


def analyze_class(node: ast.ClassDef) -> ClassLockInfo | None:
    """Run the concurrency walker over one class.

    Returns None when the class constructs no lock — RL008 has nothing
    to say about it.  Nested (non-method) functions are walked as
    separate contexts starting *unlocked*: a closure captured by another
    thread must take the lock itself, and gets credit when it does.
    """
    info = ClassLockInfo(node=node, name=node.name)
    methods = [
        item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    info.methods = {m.name for m in methods}

    # pass 1: lock attributes and attribute types, from every method
    for method in methods:
        for sub in ast.walk(method):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(sub, ast.Assign):
                targets, value = list(sub.targets), sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            for target in targets:
                attr = _is_self_attr(target)
                if attr is None or value is None:
                    continue
                if _lock_factory_call(value):
                    info.lock_attrs.add(attr)
                else:
                    cls_name = class_name_call(value)
                    if cls_name is not None:
                        info.attr_types.setdefault(attr, cls_name)
    if not info.lock_attrs:
        return None

    # pass 2: lock-state walk of every method body
    for method in methods:
        local_types: dict[str, str] = {}
        for sub in ast.walk(method):
            target, value = single_assignment(sub)
            if isinstance(target, ast.Name):
                cls_name = class_name_call(value)
                if cls_name is not None:
                    local_types[target.id] = cls_name
        _walk_lock_context(
            method.body, info, method.name, local_types, locked=False
        )
    return info


def _acquires_own_lock(item: ast.withitem, info: ClassLockInfo) -> bool:
    attr = _is_self_attr(item.context_expr)
    return attr is not None and attr in info.lock_attrs


def _walk_lock_context(
    body: list[ast.stmt],
    info: ClassLockInfo,
    method: str,
    local_types: dict[str, str],
    locked: bool,
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            now_locked = locked or any(
                _acquires_own_lock(item, info) for item in stmt.items
            )
            if now_locked and not locked:
                info.locking_methods.add(method)
            for item in stmt.items:
                _record_expr(item.context_expr, info, method, local_types, locked)
            _walk_lock_context(stmt.body, info, method, local_types, now_locked)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a closure: separate execution context, starts unlocked
            _walk_lock_context(stmt.body, info, method, local_types, locked=False)
        elif isinstance(stmt, ast.If):
            _record_expr(stmt.test, info, method, local_types, locked)
            _walk_lock_context(stmt.body, info, method, local_types, locked)
            _walk_lock_context(stmt.orelse, info, method, local_types, locked)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            _record_expr(stmt.iter, info, method, local_types, locked)
            _record_store_target(stmt.target, info, method, locked)
            _walk_lock_context(stmt.body, info, method, local_types, locked)
            _walk_lock_context(stmt.orelse, info, method, local_types, locked)
        elif isinstance(stmt, ast.While):
            _record_expr(stmt.test, info, method, local_types, locked)
            _walk_lock_context(stmt.body, info, method, local_types, locked)
            _walk_lock_context(stmt.orelse, info, method, local_types, locked)
        elif isinstance(stmt, ast.Try):
            _walk_lock_context(stmt.body, info, method, local_types, locked)
            for handler in stmt.handlers:
                _walk_lock_context(handler.body, info, method, local_types, locked)
            _walk_lock_context(stmt.orelse, info, method, local_types, locked)
            _walk_lock_context(stmt.finalbody, info, method, local_types, locked)
        else:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _walk_lock_context(
                        sub.body, info, method, local_types, locked=False
                    )
            _record_stmt(stmt, info, method, local_types, locked)


def _record_stmt(
    stmt: ast.stmt,
    info: ClassLockInfo,
    method: str,
    local_types: dict[str, str],
    locked: bool,
) -> None:
    for node in _shallow_walk(stmt):
        if isinstance(node, ast.Attribute):
            attr = _is_self_attr(node)
            if attr is not None:
                write = isinstance(node.ctx, (ast.Store, ast.Del))
                info.events.append(
                    AttrEvent(attr, write, locked, method, node)
                )
        elif isinstance(node, ast.Subscript):
            # self.X[k] = v mutates X even though X itself is a Load
            attr = _is_self_attr(node.value)
            if attr is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
                info.events.append(AttrEvent(attr, True, locked, method, node))
        elif isinstance(node, ast.Call):
            _record_call(node, info, method, local_types, locked)


def _record_expr(
    expr: ast.expr,
    info: ClassLockInfo,
    method: str,
    local_types: dict[str, str],
    locked: bool,
) -> None:
    _record_stmt(ast.Expr(value=expr), info, method, local_types, locked)


def _record_store_target(
    target: ast.expr, info: ClassLockInfo, method: str, locked: bool
) -> None:
    for node in ast.walk(target):
        if isinstance(node, ast.Attribute):
            attr = _is_self_attr(node)
            if attr is not None:
                info.events.append(AttrEvent(attr, True, locked, method, node))


def _shallow_walk(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk a statement without descending into nested function bodies
    (those are walked separately with a fresh, unlocked context)."""
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _record_call(
    node: ast.Call,
    info: ClassLockInfo,
    method: str,
    local_types: dict[str, str],
    locked: bool,
) -> None:
    func = node.func
    if isinstance(func, ast.Name):
        info.calls.append(
            CallEvent("name", func.id, "", locked, method, node)
        )
        return
    if not isinstance(func, ast.Attribute):
        return
    value = func.value
    if isinstance(value, ast.Name):
        if value.id == "self":
            info.calls.append(
                CallEvent("self", func.attr, "", locked, method, node)
            )
            # a mutator call on self.X would be self.X.m(); handled below
        elif value.id in local_types:
            info.calls.append(
                CallEvent(
                    "typed", func.attr, local_types[value.id], locked, method, node
                )
            )
        else:
            info.calls.append(
                CallEvent("dotted", func.attr, value.id, locked, method, node)
            )
        return
    attr = _is_self_attr(value)
    if attr is not None:
        # self.X.m(...): a call through an attribute; a mutator method
        # is also a write event on X
        info.calls.append(
            CallEvent("selfattr", func.attr, attr, locked, method, node)
        )
        if func.attr in MUTATOR_METHODS:
            info.events.append(AttrEvent(attr, True, locked, method, node))


# ---------------------------------------------------------------------------
# resource acquire/release walker (RL009)

#: constructor-call names whose result owns an OS resource
ACQUIRE_CALLS = frozenset(
    {
        "SharedMemory",
        "mmap",
        "Pool",
        "create_connection",
        "socket",
        "socketpair",
        "fdopen",
        "open",
    }
)

#: receiver methods that count as releasing the resource
RELEASE_METHODS = frozenset(
    {"close", "unlink", "terminate", "shutdown", "release"}
)


@dataclass(frozen=True)
class ResourceLeak:
    """One acquisition that fails to reach a release on some path."""

    node: ast.AST
    var: str
    factory: str
    reason: str  # exception-path | success-path-only | never-released


def _call_factory(node: ast.expr) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in ACQUIRE_CALLS:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in ACQUIRE_CALLS:
        return func.attr
    return None


def _names_in(node: ast.AST | None) -> set[str]:
    if node is None:
        return set()
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _build_parents(root: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _ancestors(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> Iterator[ast.AST]:
    while node in parents:
        node = parents[node]
        yield node


def _in_body(stmts: list[ast.stmt], node: ast.AST) -> bool:
    for stmt in stmts:
        for sub in ast.walk(stmt):
            if sub is node:
                return True
    return False


def find_resource_leaks(scope: ast.AST) -> Iterator[ResourceLeak]:
    """Path-check every local ``x = <factory>(...)`` acquisition in one
    function scope (nested functions are separate scopes — pass each).

    The verdicts, in priority order:

    * with-managed (``with x`` / ``with closing(x)``) — safe;
    * acquired inside a ``try`` with handlers, with more work after the
      acquisition in the same ``try`` body, and no release in any
      handler or ``finally`` — the exception path leaks even when the
      success path transfers ownership (the PR 6 ``ShmArena.pack``
      bug class);
    * released in a ``finally`` — safe;
    * ownership escapes (returned, yielded, stored into an attribute or
      container, passed to another call) — the new owner releases;
    * released only in straight-line code — the success path is covered
      but any exception in between leaks;
    * never released at all.
    """
    parents = _build_parents(scope)
    acquisitions: list[tuple[str, str, ast.Assign]] = []
    for node in _walk_scope_only(scope):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            factory = _call_factory(node.value)
            if factory is not None:
                acquisitions.append((node.targets[0].id, factory, node))

    for var, factory, assign in acquisitions:
        managed = False
        escaped = False
        releases: list[ast.Call] = []
        for node in _walk_scope_only(scope):
            if node is assign:
                continue
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == var:
                        managed = True
                    elif isinstance(expr, ast.Call) and var in _names_in(expr):
                        managed = True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if var in _names_in(getattr(node, "value", None)):
                    escaped = True
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == var
                ):
                    if func.attr in RELEASE_METHODS:
                        releases.append(node)
                    continue
                arg_names: set[str] = set()
                for arg in node.args:
                    arg_names |= _names_in(arg)
                for kw in node.keywords:
                    arg_names |= _names_in(kw.value)
                if var in arg_names:
                    escaped = True
            elif isinstance(node, ast.Assign) and node is not assign:
                if var in _names_in(node.value):
                    escaped = True

        if managed:
            continue

        released_in_finally = False
        released_in_handler = False
        for rel in releases:
            for anc in _ancestors(rel, parents):
                if isinstance(anc, ast.Try):
                    if _in_body(anc.finalbody, rel):
                        released_in_finally = True
                    if any(_in_body(h.body, rel) for h in anc.handlers):
                        released_in_handler = True

        # the exception-path check: acquired inside a guarded try with
        # more statements following, and no cleanup on the error paths
        for anc in _ancestors(assign, parents):
            if not isinstance(anc, ast.Try) or not anc.handlers:
                continue
            if not _in_body(anc.body, assign):
                continue
            holder = next(
                (s for s in anc.body if _in_body([s], assign)), None
            )
            has_more = holder is not None and anc.body.index(holder) < len(anc.body) - 1
            handler_releases = released_in_handler or any(
                _release_of(var, h.body) for h in anc.handlers
            )
            finally_releases = released_in_finally or _release_of(
                var, anc.finalbody
            )
            if has_more and not handler_releases and not finally_releases:
                yield ResourceLeak(
                    assign,
                    var,
                    factory,
                    "exception-path",
                )
                break
        else:
            if released_in_finally:
                continue
            if escaped:
                continue
            if releases:
                yield ResourceLeak(assign, var, factory, "success-path-only")
            else:
                yield ResourceLeak(assign, var, factory, "never-released")


def _release_of(var: str, stmts: list[ast.stmt]) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == var
                and node.func.attr in RELEASE_METHODS
            ):
                return True
    return False


def _walk_scope_only(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk one function scope without entering nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
