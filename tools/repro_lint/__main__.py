"""Command-line front end for :mod:`tools.repro_lint`."""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from tools.repro_lint import RULES, LintConfig, lint_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based checks for the repo's domain invariants "
            "(integer-nm geometry, worker determinism, metric-name "
            "registry, quarantine discipline, report contract, "
            "keyword-only API)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--enable",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--no-fail",
        action="store_true",
        help="exit 0 even when findings are reported (report-only mode)",
    )
    return parser


def _parse_rule_list(spec: str | None, parser: argparse.ArgumentParser) -> frozenset[str] | None:
    if spec is None:
        return None
    ids = frozenset(part.strip() for part in spec.split(",") if part.strip())
    unknown = ids - set(RULES)
    if unknown:
        parser.error(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(registered: {', '.join(sorted(RULES))})"
        )
    return ids


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            print(f"{rule_id}  {rule.name}")
            print(f"       {rule.summary}")
        return 0

    config = LintConfig(
        enable=_parse_rule_list(args.enable, parser),
        disable=_parse_rule_list(args.disable, parser) or frozenset(),
    )
    try:
        result = lint_paths(args.paths, config)
    except FileNotFoundError as exc:
        parser.error(str(exc))  # exits 2

    if args.format == "json":
        print(result.to_json())
    else:
        for violation in result.violations:
            print(violation.format())
        counts = result.counts()
        tally = (
            ", ".join(f"{n} {rule_id}" for rule_id, n in counts.items())
            if counts
            else "clean"
        )
        print(
            f"repro-lint: {result.files_checked} files checked, "
            f"{len(result.violations)} finding(s) ({tally})"
        )
    if args.no_fail:
        return 0
    return 1 if result.violations else 0


if __name__ == "__main__":
    sys.exit(main())
