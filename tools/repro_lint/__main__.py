"""Command-line front end for :mod:`tools.repro_lint`."""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from tools.repro_lint import (
    PROJECT_RULES,
    RULES,
    LintConfig,
    all_rule_ids,
    lint_paths,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based checks for the repo's domain invariants "
            "(integer-nm geometry, worker determinism, metric-name "
            "registry, quarantine discipline, report contract, "
            "keyword-only API, lock discipline, resource lifecycle, "
            "wire-protocol consistency)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--enable",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        help=(
            "content-hash cache file: unchanged files replay their cached "
            "violations and facts instead of re-parsing (invalidated "
            "automatically when the rule set or config changes)"
        ),
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report findings only for files changed relative to git HEAD "
            "(plus untracked files); discovery still covers every path so "
            "project-wide rules stay correct"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--no-fail",
        action="store_true",
        help="exit 0 even when findings are reported (report-only mode)",
    )
    return parser


def _parse_rule_list(spec: str | None, parser: argparse.ArgumentParser) -> frozenset[str] | None:
    if spec is None:
        return None
    ids = frozenset(part.strip() for part in spec.split(",") if part.strip())
    known = all_rule_ids()
    unknown = ids - known
    if unknown:
        parser.error(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(registered: {', '.join(sorted(known))})"
        )
    return ids


def _changed_files(parser: argparse.ArgumentParser) -> set[Path]:
    """Files changed vs HEAD plus untracked files, as resolved paths."""
    out: set[Path] = set()
    try:
        root = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        for args in (
            ["git", "diff", "--name-only", "HEAD"],
            ["git", "ls-files", "--others", "--exclude-standard"],
        ):
            proc = subprocess.run(
                args, capture_output=True, text=True, check=True
            )
            for line in proc.stdout.splitlines():
                if line.strip():
                    out.add((Path(root) / line.strip()).resolve())
    except (OSError, subprocess.CalledProcessError) as exc:
        parser.error(f"--changed-only needs a working git checkout: {exc}")
    return out


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(all_rule_ids()):
            for registry in (RULES, PROJECT_RULES):
                rule = registry.get(rule_id)
                if rule is None:
                    continue
                print(f"{rule_id}  {rule.name}")
                print(f"       {rule.summary}")
        return 0

    config = LintConfig(
        enable=_parse_rule_list(args.enable, parser),
        disable=_parse_rule_list(args.disable, parser) or frozenset(),
    )
    changed: set[Path] | None = None
    if args.changed_only:
        changed = _changed_files(parser)
    try:
        result = lint_paths(args.paths, config, cache_path=args.cache)
    except FileNotFoundError as exc:
        parser.error(str(exc))  # exits 2
    if changed is not None:
        result = result.filtered(changed)

    if args.format == "json":
        print(result.to_json())
    else:
        for violation in result.violations:
            print(violation.format())
        counts = result.counts()
        tally = (
            ", ".join(f"{n} {rule_id}" for rule_id, n in counts.items())
            if counts
            else "clean"
        )
        cache_note = (
            f", cache {result.cache_hits} hit(s) / {result.cache_misses} miss(es)"
            if args.cache
            else ""
        )
        print(
            f"repro-lint: {result.files_checked} files checked, "
            f"{len(result.violations)} finding(s) ({tally}){cache_note}"
        )
    if args.no_fail:
        return 0
    return 1 if result.violations else 0


if __name__ == "__main__":
    sys.exit(main())
