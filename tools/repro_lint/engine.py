"""Rule engine for ``repro-lint``: file loading, pragmas, registry, runner.

The engine is deliberately dependency-free (stdlib ``ast`` + ``tokenize``
only) so it can run in any environment that can run the package itself.
It owns everything rule-independent:

* **File discovery** — walk the given files/directories for ``*.py``,
  skipping hidden directories and ``__pycache__``.
* **Pragmas** — ``# repro-lint: disable=RL001,RL002`` suppresses those
  rules on that line; ``disable-file=...`` suppresses for the whole
  file; ``disable=all`` works in both forms.  Bare words are *markers*
  (``worker-code``, ``public-api``, ``client-api``) that opt a file
  into path-scoped
  rules; see :mod:`tools.repro_lint.rules`.
* **Rule registry** — rules self-register via :func:`register`; the
  config's ``enable``/``disable`` sets select which ones run.
* **Metric-name registry loading** — RL003 checks emission sites
  against ``repro/obs/names.py``; the engine locates and AST-parses it
  (never imports it) so linting works without the package installed.
* **Project rules** — rules that need the whole project (call graph,
  wire protocol, cross-class lock order) register via
  :func:`register_project` and run once per lint over the
  :class:`~tools.repro_lint.project.ProjectIndex` the runner assembles
  from per-file facts.
* **Content-hash cache** — per-file violations *and* facts are cached
  keyed by the file's content digest and a rule-set signature (a digest
  of the linter's own sources plus the effective config), so a warm run
  re-parses nothing yet still evaluates every project rule.
* **Output** — human one-line-per-finding or a versioned JSON document,
  and the exit-code contract shared with the ``repro`` CLI: ``0`` clean,
  ``1`` findings, ``2`` usage error.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

JSON_SCHEMA_VERSION = 2

CACHE_VERSION = 1

#: Rule id used for files that fail to parse at all.
PARSE_ERROR_ID = "RL000"

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.+?)\s*$")
_RULE_ID_RE = re.compile(r"^RL\d{3}$")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and a human message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Pragmas:
    """Per-file suppression state parsed from ``# repro-lint:`` comments."""

    file_disabled: set[str] = field(default_factory=set)
    line_disabled: dict[int, set[str]] = field(default_factory=dict)
    markers: set[str] = field(default_factory=set)

    def suppresses(self, rule_id: str, line: int) -> bool:
        if "all" in self.file_disabled or rule_id in self.file_disabled:
            return True
        on_line = self.line_disabled.get(line, ())
        return "all" in on_line or rule_id in on_line

    def to_dict(self) -> dict[str, Any]:
        return {
            "file_disabled": sorted(self.file_disabled),
            "line_disabled": {
                str(line): sorted(ids)
                for line, ids in self.line_disabled.items()
            },
            "markers": sorted(self.markers),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Pragmas":
        return cls(
            file_disabled=set(d["file_disabled"]),
            line_disabled={
                int(line): set(ids) for line, ids in d["line_disabled"].items()
            },
            markers=set(d["markers"]),
        )


def parse_pragmas(text: str) -> Pragmas:
    """Extract pragmas from every comment in ``text``.

    Tokenizing (rather than grepping lines) keeps pragmas inside string
    literals inert.  A file that cannot be tokenized yields empty
    pragmas — it will fail to AST-parse too and be reported as
    ``RL000``.
    """
    pragmas = Pragmas()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return pragmas
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        body = match.group("body")
        for clause in _DISABLE_RE.finditer(body):
            rule_ids = _split_rules(clause.group("rules"))
            if clause.group("scope"):
                pragmas.file_disabled.update(rule_ids)
            else:
                pragmas.line_disabled.setdefault(tok.start[0], set()).update(rule_ids)
        for word in _DISABLE_RE.sub(" ", body).replace(",", " ").split():
            pragmas.markers.add(word)
    return pragmas


# `disable=RL001, RL002` / `disable-file=all`; the value is a strict
# comma list of rule ids (or `all`) so trailing markers are not eaten.
_DISABLE_RE = re.compile(
    r"disable(?P<scope>-file)?\s*=\s*(?P<rules>(?:RL\d{3}|all)(?:\s*,\s*(?:RL\d{3}|all))*)"
)


def _split_rules(spec: str) -> set[str]:
    return {part.strip() for part in spec.split(",") if part.strip()}


@dataclass
class LintConfig:
    """What to check and how strictly.

    ``enable=None`` means every registered rule; ``disable`` always
    wins.  ``worker_paths``/``public_api_paths``/``client_api_paths``
    are path *substrings* (posix form) that opt files into the
    path-scoped rules; the ``worker-code`` / ``public-api`` /
    ``client-api`` file markers do the same per-file.
    """

    enable: frozenset[str] | None = None
    disable: frozenset[str] = frozenset()
    worker_paths: tuple[str, ...] = (
        "repro/parallel/",
        "repro/litho/",
        "repro/drc/",
    )
    public_api_paths: tuple[str, ...] = ("repro/api.py",)
    client_api_paths: tuple[str, ...] = ("repro/service/client.py",)
    # RL003's registry; filled by the runner from repro/obs/names.py
    metric_names: frozenset[str] | None = None
    metric_helpers: frozenset[str] = frozenset()
    metric_prefixes: tuple[str, ...] = ()

    def selects(self, rule_id: str) -> bool:
        if rule_id in self.disable:
            return False
        return self.enable is None or rule_id in self.enable


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    rel: str
    text: str
    tree: ast.Module
    pragmas: Pragmas
    config: LintConfig

    def is_worker_code(self) -> bool:
        if "worker-code" in self.pragmas.markers:
            return True
        return any(part in self.rel for part in self.config.worker_paths)

    def is_public_api(self) -> bool:
        if "public-api" in self.pragmas.markers:
            return True
        return any(self.rel.endswith(part) for part in self.config.public_api_paths)

    def is_client_api(self) -> bool:
        if "client-api" in self.pragmas.markers:
            return True
        return any(self.rel.endswith(part) for part in self.config.client_api_paths)


class Rule:
    """Base class: subclasses set ``id``/``name``/``summary`` and
    implement :meth:`check`; the ``@register`` decorator adds them to
    the registry."""

    id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.id,
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule:
    """Base class for rules that need the whole project at once.

    ``check`` receives the assembled
    :class:`~tools.repro_lint.project.ProjectIndex`; the runner applies
    each violation's own file's pragmas afterwards, so line-level
    ``disable=`` suppression works exactly as for file rules.
    """

    id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, project: Any) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, rel: str, line: int, col: int, message: str) -> Violation:
        return Violation(rule=self.id, path=rel, line=line, col=col, message=message)


RULES: dict[str, type[Rule]] = {}

PROJECT_RULES: dict[str, type[ProjectRule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    if not _RULE_ID_RE.match(cls.id):
        raise ValueError(f"rule id {cls.id!r} must match RLnnn")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Register a project-wide rule.  An id may exist in *both*
    registries (RL008 has a per-class part and a cross-class deadlock
    part); ``enable``/``disable`` select both halves together."""
    if not _RULE_ID_RE.match(cls.id):
        raise ValueError(f"rule id {cls.id!r} must match RLnnn")
    if cls.id in PROJECT_RULES:
        raise ValueError(f"duplicate project rule id {cls.id}")
    PROJECT_RULES[cls.id] = cls
    return cls


def all_rule_ids() -> frozenset[str]:
    return frozenset(RULES) | frozenset(PROJECT_RULES)


@dataclass
class LintResult:
    """The outcome of one lint run over a set of paths."""

    violations: list[Violation]
    files_checked: int
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for violation in self.violations:
            out[violation.rule] = out.get(violation.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": JSON_SCHEMA_VERSION,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "counts": self.counts(),
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def filtered(self, keep: set[Path]) -> "LintResult":
        """The same result restricted to violations in ``keep`` files.

        ``keep`` holds resolved paths; discovery (and therefore the
        project index) is unaffected — only the *reported* findings
        narrow, which is what ``--changed-only`` wants.
        """
        kept = [
            v for v in self.violations if Path(v.path).resolve() in keep
        ]
        return LintResult(
            violations=kept,
            files_checked=self.files_checked,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
        )


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            parts = candidate.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts[:-1]):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def load_metric_registry(
    paths: Sequence[str | Path],
) -> tuple[frozenset[str] | None, frozenset[str], tuple[str, ...]]:
    """Locate and AST-parse ``repro/obs/names.py`` under the lint roots.

    Returns ``(static names, helper/constant identifiers, dynamic
    prefixes)``; the first element is None when no registry file is
    found (RL003 then reports literals without suggesting constants).
    The file is parsed, never imported, so linting does not require the
    package (or its dependencies) to be importable.
    """
    candidates: list[Path] = []
    for raw in paths:
        path = Path(raw)
        base = path if path.is_dir() else path.parent
        for parent in [base, *base.parents]:
            direct = parent / "repro" / "obs" / "names.py"
            if direct.is_file():
                candidates.append(direct)
                break
        if not candidates and path.is_dir():
            candidates.extend(sorted(path.rglob("repro/obs/names.py")))
        if candidates:
            break
    if not candidates:
        return None, frozenset(), ()

    try:
        tree = ast.parse(candidates[0].read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None, frozenset(), ()
    names: set[str] = set()
    exports: set[str] = set()
    prefixes: tuple[str, ...] = ()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            exports.add(node.name)
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
            value = node.value
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        exports.add(target.id)
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            names.add(value.value)
        elif target.id == "DYNAMIC_PREFIXES" and isinstance(value, ast.Tuple):
            prefixes = tuple(
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            )
    return frozenset(names), frozenset(exports), prefixes


def _import_rule_modules() -> None:
    # rules register on import; defer to avoid a circular import at
    # package load time
    from tools.repro_lint import rules  # noqa: F401
    from tools.repro_lint import rules_interproc  # noqa: F401
    from tools.repro_lint import rules_lifecycle  # noqa: F401
    from tools.repro_lint import rules_lock  # noqa: F401
    from tools.repro_lint import rules_protocol  # noqa: F401


def ruleset_signature(config: LintConfig) -> str:
    """A digest of everything that can change a file's lint outcome
    besides the file itself: the linter's own sources and the effective
    configuration.  Editing any rule (or this engine) invalidates every
    cache entry at once."""
    h = hashlib.sha256()
    package_dir = Path(__file__).parent
    for source in sorted(package_dir.glob("*.py")):
        h.update(source.name.encode("utf-8"))
        h.update(source.read_bytes())
    h.update(
        repr(
            (
                CACHE_VERSION,
                sorted(config.enable) if config.enable is not None else None,
                sorted(config.disable),
                config.worker_paths,
                config.public_api_paths,
                config.client_api_paths,
                sorted(config.metric_names) if config.metric_names is not None else None,
                sorted(config.metric_helpers),
                config.metric_prefixes,
            )
        ).encode("utf-8")
    )
    return h.hexdigest()


class LintCache:
    """Per-file violations + facts keyed by content digest.

    The on-disk document carries the rule-set signature; a cache written
    by a different linter version (or config) is discarded wholesale
    rather than partially trusted.  Unreadable or corrupt caches are
    treated as empty — the cache can only ever make a run faster, never
    change its outcome.
    """

    def __init__(self, path: Path, signature: str) -> None:
        self.path = path
        self.signature = signature
        self.entries: dict[str, dict[str, Any]] = {}
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            isinstance(doc, dict)
            and doc.get("version") == CACHE_VERSION
            and doc.get("ruleset") == signature
            and isinstance(doc.get("files"), dict)
        ):
            self.entries = doc["files"]

    def get(self, rel: str, digest: str) -> dict[str, Any] | None:
        entry = self.entries.get(rel)
        if entry is not None and entry.get("digest") == digest:
            return entry
        return None

    def put(
        self,
        rel: str,
        digest: str,
        violations: list[Violation],
        facts: dict[str, Any],
        pragmas: Pragmas,
    ) -> None:
        self.entries[rel] = {
            "digest": digest,
            "violations": [v.to_dict() for v in violations],
            "facts": facts,
            "pragmas": pragmas.to_dict(),
        }

    def save(self) -> None:
        doc = {
            "version": CACHE_VERSION,
            "ruleset": self.signature,
            "files": self.entries,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(doc, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # a cache that cannot persist is just a cold cache


def _lint_one(
    path: Path, rel: str, config: LintConfig
) -> tuple[list[Violation], Any, Pragmas]:
    """Parse and lint one file: (violations, FileFacts, pragmas)."""
    from tools.repro_lint import project as _project

    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        violation = Violation(
            rule=PARSE_ERROR_ID,
            path=rel,
            line=int(line),
            col=1,
            message=f"file does not parse: {exc}",
        )
        return [violation], _project.FileFacts(rel=rel), Pragmas()
    ctx = FileContext(
        path=path,
        rel=rel,
        text=text,
        tree=tree,
        pragmas=parse_pragmas(text),
        config=config,
    )
    out: list[Violation] = []
    for rule_id in sorted(RULES):
        if not config.selects(rule_id):
            continue
        for violation in RULES[rule_id]().check(ctx):
            if not ctx.pragmas.suppresses(violation.rule, violation.line):
                out.append(violation)
    return out, _project.extract_file_facts(ctx), ctx.pragmas


def lint_file(path: Path, rel: str, config: LintConfig) -> list[Violation]:
    """Lint one file with every selected *file* rule, applying pragmas."""
    _import_rule_modules()
    violations, _, _ = _lint_one(path, rel, config)
    return violations


def lint_paths(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
    *,
    cache_path: str | Path | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and aggregate the findings.

    File rules run per file (or replay from the cache when the file and
    the rule set are unchanged); project rules then run once over the
    assembled facts.  With ``cache_path`` the cache is loaded before and
    written back after the run.
    """
    _import_rule_modules()
    from tools.repro_lint import project as _project

    config = config or LintConfig()
    if config.metric_names is None:
        metric_names, helpers, prefixes = load_metric_registry(paths)
        config.metric_names = metric_names
        config.metric_helpers = helpers
        config.metric_prefixes = prefixes
    files = iter_python_files(paths)

    cache: LintCache | None = None
    if cache_path is not None:
        cache = LintCache(Path(cache_path), ruleset_signature(config))

    violations: list[Violation] = []
    all_facts: list[Any] = []
    pragmas_by_rel: dict[str, Pragmas] = {}
    hits = misses = 0
    for path in files:
        rel = path.as_posix()
        entry = None
        digest = ""
        if cache is not None:
            try:
                digest = hashlib.sha256(path.read_bytes()).hexdigest()
            except OSError:
                digest = ""
            entry = cache.get(rel, digest) if digest else None
        if entry is not None:
            hits += 1
            file_violations = [Violation(**v) for v in entry["violations"]]
            facts = _project.FileFacts.from_dict(entry["facts"])
            pragmas = Pragmas.from_dict(entry["pragmas"])
        else:
            misses += 1
            file_violations, facts, pragmas = _lint_one(path, rel, config)
            if cache is not None and digest:
                cache.put(rel, digest, file_violations, facts.to_dict(), pragmas)
        violations.extend(file_violations)
        all_facts.append(facts)
        pragmas_by_rel[rel] = pragmas

    index = _project.build_project(all_facts, pragmas_by_rel)
    for rule_id in sorted(PROJECT_RULES):
        if not config.selects(rule_id):
            continue
        for violation in PROJECT_RULES[rule_id]().check(index):
            pragmas = pragmas_by_rel.get(violation.path, Pragmas())
            if not pragmas.suppresses(violation.rule, violation.line):
                violations.append(violation)

    if cache is not None:
        cache.save()
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return LintResult(
        violations=violations,
        files_checked=len(files),
        cache_hits=hits,
        cache_misses=misses,
    )
