"""RL010 — interprocedural worker determinism.

RL002 checks files that *are* worker code; this rule walks the call
graph outward from them.  A helper in a non-worker module that reads
the wall clock or iterates a bare set is just as nondeterministic when
a DRC check calls it from inside a tile worker — the taint catalogue is
identical (it is literally RL002's, shared via
:mod:`tools.repro_lint.dataflow`), only the reporting site moves to the
helper and the message carries the call chain that makes it worker-
reachable.  Suppressions therefore live where the hazard is, next to
the code that owns the invariant.
"""

from __future__ import annotations

from typing import Iterator

from tools.repro_lint.engine import ProjectRule, Violation, register_project


@register_project
class InterprocWorkerDeterminismRule(ProjectRule):
    id = "RL010"
    name = "interproc-worker-determinism"
    summary = (
        "RL002's determinism taints propagate through the call graph: "
        "helpers reachable from worker-code files must be deterministic "
        "too"
    )

    def check(self, project) -> Iterator[Violation]:
        chains = project.worker_reachable()
        seen: set[tuple[str, int, int]] = set()
        for fid in sorted(chains):
            rel, _qualname = fid
            if project.by_rel[rel].is_worker:
                continue  # the file-local RL002 already covers these
            fn = project.functions[fid]
            for taint in fn.taints:
                key = (rel, taint.line, taint.col)
                if key in seen:
                    continue
                seen.add(key)
                yield self.violation(
                    rel,
                    taint.line,
                    taint.col,
                    f"{taint.message} [reachable from worker code: "
                    f"{self._render_chain(chains[fid])}]",
                )

    @staticmethod
    def _render_chain(chain: list[str]) -> str:
        seed_rel, seed_qual = chain[0].split(":", 1)
        rendered = [f"{seed_rel}:{seed_qual}"]
        rendered.extend(entry.split(":", 1)[1] for entry in chain[1:])
        return " -> ".join(rendered)
