"""Project-wide facts: symbol index, call graph, per-file summaries.

The per-file rules see one AST at a time; the concurrency and protocol
invariants (RL008's deadlock check, RL010, RL011) need the whole
project.  This module extracts a *serializable* summary — functions,
calls, determinism taints, lock-owning classes, wire-protocol ops and
error codes — from each parsed file, and assembles the summaries into a
:class:`ProjectIndex` with enough name resolution to walk calls across
modules.

Serializability is the point: the content-hash cache stores each file's
facts next to its violations, so a warm run never re-parses unchanged
files yet the project rules still see the full picture.

Resolution is deliberately suffix-based: an import of
``repro.geometry.index`` matches any linted file whose dotted path ends
with that module string, so the same logic works for ``src/``-rooted
trees and test fixtures alike.  Like the engine, nothing here imports
the analyzed code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator

from tools.repro_lint import dataflow
from tools.repro_lint.engine import FileContext, Pragmas

FACTS_VERSION = 1


# ---------------------------------------------------------------------------
# facts model (all JSON round-trippable)


@dataclass(frozen=True)
class TaintFact:
    """One determinism hazard inside a function body."""

    line: int
    col: int
    kind: str
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TaintFact":
        return cls(d["line"], d["col"], d["kind"], d["message"])


@dataclass(frozen=True)
class CallSite:
    """One call, pre-classified for cross-module resolution.

    kind: ``name`` (``f()``), ``self`` (``self.m()``), ``selfattr``
    (``self.x.m()``, ``attr`` is the x), ``typed`` (``v.m()`` with a
    locally constructed ``v``, ``attr`` is the class name), ``dotted``
    (``recv.f()``, ``attr`` is the receiver name).
    """

    kind: str
    target: str
    attr: str
    line: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "attr": self.attr,
            "line": self.line,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CallSite":
        return cls(d["kind"], d["target"], d["attr"], d["line"])


@dataclass
class FunctionFacts:
    """Summary of one top-level function or method."""

    qualname: str  # "func" or "Class.method"
    line: int
    taints: list[TaintFact] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "taints": [t.to_dict() for t in self.taints],
            "calls": [c.to_dict() for c in self.calls],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FunctionFacts":
        return cls(
            qualname=d["qualname"],
            line=d["line"],
            taints=[TaintFact.from_dict(t) for t in d["taints"]],
            calls=[CallSite.from_dict(c) for c in d["calls"]],
        )


@dataclass
class ClassFacts:
    """The lock-relevant summary of one class (empty lock set = none)."""

    name: str
    line: int
    lock_attrs: list[str] = field(default_factory=list)
    attr_types: dict[str, str] = field(default_factory=dict)
    #: methods whose body acquires one of this class's own locks
    locking_methods: list[str] = field(default_factory=list)
    #: calls made while holding this class's lock
    locked_calls: list[CallSite] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "lock_attrs": self.lock_attrs,
            "attr_types": self.attr_types,
            "locking_methods": self.locking_methods,
            "locked_calls": [c.to_dict() for c in self.locked_calls],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ClassFacts":
        return cls(
            name=d["name"],
            line=d["line"],
            lock_attrs=list(d["lock_attrs"]),
            attr_types=dict(d["attr_types"]),
            locking_methods=list(d["locking_methods"]),
            locked_calls=[CallSite.from_dict(c) for c in d["locked_calls"]],
        )


@dataclass
class WireFacts:
    """Wire-protocol surface of one file, for RL011."""

    #: ("op", line) sent via request("op", ...) or {"op": "..."} literals
    ops_sent: list[tuple[str, int]] = field(default_factory=list)
    #: op strings this file compares an ``op`` variable against
    ops_handled: list[str] = field(default_factory=list)
    #: (op, line) members of a top-level OPS / STREAM_OPS tuple
    ops_declared: list[tuple[str, int]] = field(default_factory=list)
    #: class-level ``code = "literal"`` assignments: (class, code, line)
    code_literals: list[tuple[str, str, int]] = field(default_factory=list)
    #: class-level ``code = CONST`` references: (class, const, line)
    code_refs: list[tuple[str, str, int]] = field(default_factory=list)
    #: top-level UPPER_CASE string constants: name -> (value, line)
    constants: dict[str, tuple[str, int]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ops_sent": [list(t) for t in self.ops_sent],
            "ops_handled": self.ops_handled,
            "ops_declared": [list(t) for t in self.ops_declared],
            "code_literals": [list(t) for t in self.code_literals],
            "code_refs": [list(t) for t in self.code_refs],
            "constants": {k: list(v) for k, v in self.constants.items()},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "WireFacts":
        return cls(
            ops_sent=[(t[0], t[1]) for t in d["ops_sent"]],
            ops_handled=list(d["ops_handled"]),
            ops_declared=[(t[0], t[1]) for t in d["ops_declared"]],
            code_literals=[(t[0], t[1], t[2]) for t in d["code_literals"]],
            code_refs=[(t[0], t[1], t[2]) for t in d["code_refs"]],
            constants={k: (v[0], v[1]) for k, v in d["constants"].items()},
        )


@dataclass
class FileFacts:
    """Everything the project rules need to know about one file."""

    rel: str
    is_worker: bool = False
    #: local name -> "module" or "module:symbol" (from-imports)
    imports: dict[str, str] = field(default_factory=dict)
    functions: list[FunctionFacts] = field(default_factory=list)
    classes: list[ClassFacts] = field(default_factory=list)
    wire: WireFacts = field(default_factory=WireFacts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": FACTS_VERSION,
            "rel": self.rel,
            "is_worker": self.is_worker,
            "imports": self.imports,
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "wire": self.wire.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FileFacts":
        return cls(
            rel=d["rel"],
            is_worker=d["is_worker"],
            imports=dict(d["imports"]),
            functions=[FunctionFacts.from_dict(f) for f in d["functions"]],
            classes=[ClassFacts.from_dict(c) for c in d["classes"]],
            wire=WireFacts.from_dict(d["wire"]),
        )


# ---------------------------------------------------------------------------
# extraction


def extract_file_facts(ctx: FileContext) -> FileFacts:
    """Summarize one parsed file into serializable facts."""
    facts = FileFacts(rel=ctx.rel, is_worker=ctx.is_worker_code())
    tree = ctx.tree
    _extract_imports(tree, facts)
    random_imports = dataflow.names_imported_from(tree, "random")

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.functions.append(
                _function_facts(node, node.name, random_imports)
            )
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    facts.functions.append(
                        _function_facts(
                            item, f"{node.name}.{item.name}", random_imports
                        )
                    )
            facts.classes.append(_class_facts(node))
            _extract_code_fields(node, facts.wire)

    _extract_wire(tree, facts.wire)
    return facts


def _extract_imports(tree: ast.Module, facts: FileFacts) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports: same package, handled locally
            for alias in node.names:
                facts.imports[alias.asname or alias.name] = (
                    f"{node.module}:{alias.name}"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    facts.imports[alias.asname] = alias.name
                else:
                    facts.imports[alias.name.split(".")[0]] = alias.name.split(".")[0]


def _function_facts(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    random_imports: frozenset[str],
) -> FunctionFacts:
    facts = FunctionFacts(qualname=qualname, line=node.lineno)
    for taint in dataflow.iter_taints(node, random_imports):
        facts.taints.append(
            TaintFact(
                line=getattr(taint.node, "lineno", node.lineno),
                col=getattr(taint.node, "col_offset", 0) + 1,
                kind=taint.kind,
                message=taint.message,
            )
        )
    local_types: dict[str, str] = {}
    for sub in ast.walk(node):
        target, value = dataflow.single_assignment(sub)
        if isinstance(target, ast.Name):
            cls_name = dataflow.class_name_call(value)
            if cls_name is not None:
                local_types[target.id] = cls_name
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            site = _classify_call(sub, local_types)
            if site is not None:
                facts.calls.append(site)
    return facts


def _classify_call(
    node: ast.Call, local_types: dict[str, str]
) -> CallSite | None:
    func = node.func
    line = node.lineno
    if isinstance(func, ast.Name):
        return CallSite("name", func.id, "", line)
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        if value.id == "self":
            return CallSite("self", func.attr, "", line)
        if value.id in local_types:
            return CallSite("typed", func.attr, local_types[value.id], line)
        return CallSite("dotted", func.attr, value.id, line)
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
    ):
        return CallSite("selfattr", func.attr, value.attr, line)
    return None


def _class_facts(node: ast.ClassDef) -> ClassFacts:
    facts = ClassFacts(name=node.name, line=node.lineno)
    info = dataflow.analyze_class(node)
    if info is None:
        return facts
    facts.lock_attrs = sorted(info.lock_attrs)
    facts.attr_types = dict(info.attr_types)
    facts.locking_methods = sorted(info.locking_methods)
    for call in info.calls:
        if call.locked and call.kind in {"selfattr", "typed", "dotted"}:
            facts.locked_calls.append(
                CallSite(
                    call.kind,
                    call.target,
                    call.attr,
                    getattr(call.node, "lineno", node.lineno),
                )
            )
    return facts


def _extract_code_fields(node: ast.ClassDef, wire: WireFacts) -> None:
    """Class-level ``code = ...`` assignments (the error-code contract)."""
    for item in node.body:
        if not isinstance(item, ast.Assign) or len(item.targets) != 1:
            continue
        target = item.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "code"):
            continue
        value = item.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            wire.code_literals.append((node.name, value.value, item.lineno))
        elif isinstance(value, ast.Name):
            wire.code_refs.append((node.name, value.id, item.lineno))
        elif isinstance(value, ast.Attribute):
            wire.code_refs.append((node.name, value.attr, item.lineno))


def _extract_wire(tree: ast.Module, wire: WireFacts) -> None:
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id in ("OPS", "STREAM_OPS") and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str
                    ):
                        wire.ops_declared.append((elt.value, elt.lineno))
            elif target.id.isupper() and isinstance(node.value, ast.Constant):
                if isinstance(node.value.value, str):
                    wire.constants[target.id] = (node.value.value, node.lineno)

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = node.func.attr if isinstance(node.func, ast.Attribute) else (
                node.func.id if isinstance(node.func, ast.Name) else None
            )
            if name == "request" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    wire.ops_sent.append((first.value, first.lineno))
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "op"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    wire.ops_sent.append((value.value, value.lineno))
        elif isinstance(node, ast.Compare):
            exprs = [node.left, *node.comparators]
            involves_op = any(
                (isinstance(e, ast.Name) and e.id == "op")
                or (isinstance(e, ast.Attribute) and e.attr == "op")
                for e in exprs
            )
            if not involves_op:
                continue
            for e in exprs:
                if isinstance(e, ast.Constant) and isinstance(e.value, str):
                    wire.ops_handled.append(e.value)
                elif isinstance(e, (ast.Tuple, ast.List, ast.Set)):
                    for elt in e.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            wire.ops_handled.append(elt.value)


# ---------------------------------------------------------------------------
# project index


FuncId = tuple[str, str]  # (rel path, qualname)


class ProjectIndex:
    """The assembled project: facts per file plus name resolution."""

    def __init__(
        self, files: list[FileFacts], pragmas: dict[str, Pragmas]
    ) -> None:
        self.files = files
        self.pragmas = pragmas
        self.by_rel: dict[str, FileFacts] = {f.rel: f for f in files}
        #: dotted module path (suffix-matchable) per rel
        self.modules: list[tuple[str, str]] = []
        self.functions: dict[FuncId, FunctionFacts] = {}
        self.classes_by_name: dict[str, list[tuple[str, ClassFacts]]] = {}
        for f in files:
            dotted = f.rel[:-3].replace("/", ".") if f.rel.endswith(".py") else f.rel
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            self.modules.append((dotted, f.rel))
            for fn in f.functions:
                self.functions[(f.rel, fn.qualname)] = fn
            for cls in f.classes:
                self.classes_by_name.setdefault(cls.name, []).append(
                    (f.rel, cls)
                )

    # -- resolution ------------------------------------------------------
    def resolve_module(self, module: str) -> str | None:
        """rel path of the linted file whose dotted path ends with
        ``module`` (exact tail on a ``.`` boundary)."""
        for dotted, rel in self.modules:
            if dotted == module or dotted.endswith("." + module):
                return rel
        return None

    def _resolve_import(self, rel: str, name: str) -> tuple[str, str] | None:
        """(target rel, symbol) for an imported local ``name``, if the
        target module is part of this lint run."""
        facts = self.by_rel.get(rel)
        if facts is None:
            return None
        spec = facts.imports.get(name)
        if spec is None:
            return None
        if ":" in spec:
            module, symbol = spec.split(":", 1)
            target = self.resolve_module(module)
            if target is not None:
                return target, symbol
            # `from pkg import mod` — the symbol may itself be a module
            target = self.resolve_module(f"{module}.{symbol}")
            if target is not None:
                return target, ""
            return None
        target = self.resolve_module(spec)
        if target is not None:
            return target, ""
        return None

    def resolve_class(self, rel: str, class_name: str) -> tuple[str, ClassFacts] | None:
        """Find ``class_name`` from the viewpoint of file ``rel``."""
        hit = self._resolve_import(rel, class_name)
        if hit is not None:
            target_rel, symbol = hit
            for target, cls in self.classes_by_name.get(symbol or class_name, []):
                if target == target_rel:
                    return target, cls
        for target, cls in self.classes_by_name.get(class_name, []):
            if target == rel:
                return target, cls
        candidates = self.classes_by_name.get(class_name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_call(self, rel: str, caller: str, site: CallSite) -> FuncId | None:
        """Resolve one call site to a function in this project, if we can.

        ``caller`` is the calling function's qualname (used for
        ``self.m()``).  Unresolvable calls — stdlib, dynamic dispatch we
        cannot type — return None; the analysis stays sound for what it
        *can* see and silent otherwise.
        """
        kind = site.kind
        if kind == "self":
            if "." in caller:
                cls = caller.split(".", 1)[0]
                fid = (rel, f"{cls}.{site.target}")
                if fid in self.functions:
                    return fid
            return None
        if kind == "name":
            hit = self._resolve_import(rel, site.target)
            if hit is not None:
                target_rel, symbol = hit
                fid = (target_rel, symbol or site.target)
                if fid in self.functions:
                    return fid
                return None
            fid = (rel, site.target)
            if fid in self.functions:
                return fid
            return None
        if kind == "selfattr":
            if "." not in caller:
                return None
            cls_name = caller.split(".", 1)[0]
            facts = self.by_rel.get(rel)
            if facts is None:
                return None
            owner = next((c for c in facts.classes if c.name == cls_name), None)
            if owner is None:
                return None
            attr_cls = owner.attr_types.get(site.attr)
            if attr_cls is None:
                return None
            resolved = self.resolve_class(rel, attr_cls)
            if resolved is None:
                return None
            target_rel, cls = resolved
            fid = (target_rel, f"{cls.name}.{site.target}")
            return fid if fid in self.functions else None
        if kind == "typed":
            resolved = self.resolve_class(rel, site.attr)
            if resolved is None:
                return None
            target_rel, cls = resolved
            fid = (target_rel, f"{cls.name}.{site.target}")
            return fid if fid in self.functions else None
        if kind == "dotted":
            hit = self._resolve_import(rel, site.attr)
            if hit is not None:
                target_rel, symbol = hit
                if symbol:
                    # `from pkg import mod as recv` or a class:
                    # try Class.method, then module-level function
                    fid = (target_rel, f"{symbol}.{site.target}")
                    if fid in self.functions:
                        return fid
                fid = (target_rel, site.target)
                if fid in self.functions:
                    return fid
            return None
        return None

    # -- reachability ----------------------------------------------------
    def worker_reachable(self) -> dict[FuncId, list[str]]:
        """Functions reachable from worker-file code, with one call chain.

        Returns ``{function: [qualname, ...]}`` mapping every reached
        function to the chain of qualified names that reaches it,
        starting at a worker-file function.  Seeds are every function
        defined in a worker file; traversal is BFS in sorted order so
        the reported chain is deterministic.
        """
        seeds = sorted(
            fid for fid in self.functions if self.by_rel[fid[0]].is_worker
        )
        chains: dict[FuncId, list[str]] = {
            fid: [f"{fid[0]}:{fid[1]}"] for fid in seeds
        }
        frontier = list(seeds)
        while frontier:
            next_frontier: list[FuncId] = []
            for fid in frontier:
                rel, qualname = fid
                fn = self.functions[fid]
                for site in fn.calls:
                    callee = self.resolve_call(rel, qualname, site)
                    if callee is None or callee in chains:
                        continue
                    chains[callee] = chains[fid] + [
                        f"{callee[0]}:{callee[1]}"
                    ]
                    next_frontier.append(callee)
            frontier = sorted(next_frontier)
        return chains


def build_project(
    files: list[FileFacts], pragmas: dict[str, Pragmas]
) -> ProjectIndex:
    return ProjectIndex(files, pragmas)
