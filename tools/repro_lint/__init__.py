"""repro-lint: AST-based checks for the repo's own domain invariants.

The dimensional checkers (ruff, pytest) verify Python; ``repro-lint``
verifies *this codebase's physics*: integer-nm geometry, deterministic
worker code, registered metric names, the quarantine discipline, the
``BaseReport`` contract, and the keyword-only public API — the DRC-Plus
idea (check patterns the basic rule deck cannot express) pointed at the
code instead of the layout.

Run it as a module::

    python -m tools.repro_lint src/            # human output
    python -m tools.repro_lint src/ --format json
    python -m tools.repro_lint --list-rules

Exit codes follow the ``repro`` CLI contract: ``0`` clean, ``1``
findings (``--no-fail`` opts out), ``2`` usage error.  Suppress a
deliberate exception with ``# repro-lint: disable=RLnnn`` on the
offending line (file-wide: ``disable-file=``); mark a whole file as
worker-executed or public-API with the ``worker-code`` / ``public-api``
markers.  See ``docs/LINTING.md`` for the full rule catalogue.
"""

from tools.repro_lint.engine import (
    PARSE_ERROR_ID,
    FileContext,
    LintConfig,
    LintResult,
    Pragmas,
    Rule,
    RULES,
    Violation,
    iter_python_files,
    lint_paths,
    parse_pragmas,
    register,
)
from tools.repro_lint import rules as _rules  # noqa: F401  (registers RL001-RL007)

__all__ = [
    "PARSE_ERROR_ID",
    "FileContext",
    "LintConfig",
    "LintResult",
    "Pragmas",
    "Rule",
    "RULES",
    "Violation",
    "iter_python_files",
    "lint_paths",
    "parse_pragmas",
    "register",
]
