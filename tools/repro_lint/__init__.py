"""repro-lint: AST-based checks for the repo's own domain invariants.

The dimensional checkers (ruff, pytest) verify Python; ``repro-lint``
verifies *this codebase's physics*: integer-nm geometry, deterministic
worker code, registered metric names, the quarantine discipline, the
``BaseReport`` contract, the keyword-only public API, lock discipline,
resource lifecycles, and the wire-protocol contract — the DRC-Plus idea
(check patterns the basic rule deck cannot express) pointed at the code
instead of the layout.

Rules come in two shapes.  *File rules* (RL001–RL009) see one AST at a
time; *project rules* (RL008's deadlock half, RL010, RL011) run over a
cross-module index of per-file facts — call graph, lock summaries, wire
ops — built by :mod:`tools.repro_lint.project`.  Facts are serializable
so the content-hash cache (``--cache``) can skip parsing unchanged
files while project rules still see the whole project.

Run it as a module::

    python -m tools.repro_lint src/            # human output
    python -m tools.repro_lint src/ --format json
    python -m tools.repro_lint src/ --cache .repro-lint-cache.json
    python -m tools.repro_lint src/ --changed-only
    python -m tools.repro_lint --list-rules

Exit codes follow the ``repro`` CLI contract: ``0`` clean, ``1``
findings (``--no-fail`` opts out), ``2`` usage error.  Suppress a
deliberate exception with ``# repro-lint: disable=RLnnn`` on the
offending line (file-wide: ``disable-file=``); mark a whole file as
worker-executed or public-API with the ``worker-code`` / ``public-api``
markers.  See ``docs/LINTING.md`` for the full rule catalogue.
"""

from tools.repro_lint.engine import (
    PARSE_ERROR_ID,
    FileContext,
    LintCache,
    LintConfig,
    LintResult,
    Pragmas,
    ProjectRule,
    Rule,
    PROJECT_RULES,
    RULES,
    Violation,
    all_rule_ids,
    iter_python_files,
    lint_paths,
    parse_pragmas,
    register,
    register_project,
    ruleset_signature,
)
from tools.repro_lint import rules as _rules  # noqa: F401  (registers RL001-RL007)
from tools.repro_lint import rules_lock as _rules_lock  # noqa: F401  (RL008)
from tools.repro_lint import rules_lifecycle as _rules_lifecycle  # noqa: F401  (RL009)
from tools.repro_lint import rules_interproc as _rules_interproc  # noqa: F401  (RL010)
from tools.repro_lint import rules_protocol as _rules_protocol  # noqa: F401  (RL011)

__all__ = [
    "PARSE_ERROR_ID",
    "FileContext",
    "LintCache",
    "LintConfig",
    "LintResult",
    "Pragmas",
    "ProjectRule",
    "PROJECT_RULES",
    "Rule",
    "RULES",
    "Violation",
    "all_rule_ids",
    "iter_python_files",
    "lint_paths",
    "parse_pragmas",
    "register",
    "register_project",
    "ruleset_signature",
]
