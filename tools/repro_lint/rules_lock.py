"""RL008 — lock discipline, in two halves.

The per-file half: in any class that constructs a ``threading`` lock,
an attribute that is ever *written* under ``with self.<lock>`` is
lock-guarded, and every other access to it — read or write, in any
method — must also hold the lock.  Private helper methods whose every
intra-class call site holds the lock are credited as running locked
(the interprocedural part); ``__init__``/``__post_init__``/``__del__``
are exempt because they run before or after the object is shared.
Closures defined inside methods are analyzed as separate, initially
*unlocked* contexts: a callback captured by another thread must take
the lock itself.

The project half: nested lock acquisition across classes must be
acyclic.  Holding class A's lock while calling a method of class B that
acquires B's lock creates an order edge A→B; a cycle in that graph is a
deadlock waiting for the right interleaving, and is reported on one of
the participating call sites.  Same-class nesting is exempt — a
``Condition(self._lock)`` shares its underlying lock by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint import dataflow
from tools.repro_lint.engine import (
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    register,
    register_project,
)


@register
class LockDisciplineRule(Rule):
    id = "RL008"
    name = "lock-discipline"
    summary = (
        "attributes written under `with self.<lock>` are lock-guarded and "
        "must never be accessed without the lock (helper methods called "
        "only under the lock are credited)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = dataflow.analyze_class(node)
            if info is None:
                continue
            guarded = info.guarded_attrs()
            if not guarded:
                continue
            credited = info.locked_helper_methods()
            for event in info.events:
                if event.attr not in guarded:
                    continue
                if event.locked:
                    continue
                if event.method in dataflow.EXEMPT_METHODS:
                    continue
                if event.method in credited:
                    continue
                access = "written" if event.write else "read"
                yield self.violation(
                    ctx,
                    event.node,
                    f"self.{event.attr} is written under the {info.name} "
                    f"lock but {access} without it in {event.method}(); "
                    "take the lock or snapshot the value inside it",
                )


@register_project
class LockOrderRule(ProjectRule):
    id = "RL008"
    name = "lock-order"
    summary = (
        "nested lock acquisition across classes must follow one global "
        "order; a cycle (A holds its lock and calls into B, which can "
        "call back into A under its own lock) is a latent deadlock"
    )

    def check(self, project) -> Iterator[Violation]:
        # nodes: lock-owning classes; edges: calls made under the
        # caller's lock into a method that acquires the callee's lock
        edges: dict[tuple[str, str], list[tuple[str, str, str, int]]] = {}
        for facts in project.files:
            for cls in facts.classes:
                if not cls.lock_attrs:
                    continue
                for site in cls.locked_calls:
                    target = self._target_class(project, facts.rel, cls, site)
                    if target is None:
                        continue
                    target_key, target_cls = target
                    if target_key == (facts.rel, cls.name):
                        continue  # same-class nesting: shared lock
                    if not target_cls.lock_attrs:
                        continue
                    if site.target not in target_cls.locking_methods:
                        continue
                    edges.setdefault((facts.rel, cls.name), []).append(
                        (target_key[0], target_key[1], site.target, site.line)
                    )

        graph = {
            src: sorted({(rel, name) for rel, name, _, _ in dests})
            for src, dests in edges.items()
        }
        reported: set[frozenset[tuple[str, str]]] = set()
        for src in sorted(graph):
            for rel, name, method, line in sorted(edges[src], key=lambda e: e[3]):
                dest = (rel, name)
                path = self._find_path(graph, dest, src)
                if path is None:
                    continue
                cycle = frozenset([src, *path])
                if cycle in reported:
                    continue
                reported.add(cycle)
                order = " -> ".join(c[1] for c in [src, *path])
                yield self.violation(
                    src[0],
                    line,
                    1,
                    f"lock-order cycle {order}: {src[1]} calls "
                    f"{name}.{method}() while holding its own lock, and "
                    f"{name} can acquire locks back along this chain; "
                    "acquire class locks in one global order",
                )

    @staticmethod
    def _target_class(project, rel: str, cls, site):
        """((rel, name), ClassFacts) of the class a locked call lands in."""
        if site.kind == "selfattr":
            attr_cls = cls.attr_types.get(site.attr)
            if attr_cls is None:
                return None
            resolved = project.resolve_class(rel, attr_cls)
        elif site.kind == "typed":
            resolved = project.resolve_class(rel, site.attr)
        else:
            return None
        if resolved is None:
            return None
        target_rel, target_cls = resolved
        return (target_rel, target_cls.name), target_cls

    @staticmethod
    def _find_path(graph, start, goal):
        """BFS path from ``start`` to ``goal``, or None."""
        if start == goal:
            return [start]
        frontier = [[start]]
        seen = {start}
        while frontier:
            next_frontier = []
            for path in frontier:
                for nxt in graph.get(path[-1], []):
                    if nxt == goal:
                        return path + [nxt]
                    if nxt not in seen:
                        seen.add(nxt)
                        next_frontier.append(path + [nxt])
            frontier = next_frontier
        return None
