"""The repo's domain invariants as lint rules (RL001–RL007).

Each rule encodes something the dimensional checkers (ruff, pytest)
cannot express — the unwritten contracts PRs 1–4 introduced:

* **RL001** — nm coordinates are integers.  Float literals or true
  division flowing into a geometry constructor break slice-exact
  rasterization and content-hash cache keys.
* **RL002** — worker-executed code must be deterministic.  Wall-clock
  reads, global ``random``, ``id()``-keyed lookups, and set-iteration
  ordering make ``jobs=N`` diverge from ``jobs=1``.
* **RL003** — metric names come from :mod:`repro.obs.names`.  A typo'd
  literal silently forks a series.
* **RL004** — no blanket ``except Exception`` in engine code without a
  re-raise or quarantine routing (the PR 3 bug class: a swallowed
  worker error re-ran serially and hid real failures).
* **RL005** — report classes implement the ``BaseReport`` contract and
  never re-introduce the deprecated field spellings.
* **RL006** — ``repro.api`` entry-point options are keyword-only, so
  new options can be added without breaking positional callers.
* **RL007** — the same contract extended to every public callable on
  the client surface: methods of public classes in ``repro.api`` and
  ``repro.service.client`` (plus module-level functions in the
  latter) take options keyword-only.

Rules are heuristic by design: they know this codebase's idioms, not
Python in general.  A deliberate exception to any rule gets a
``# repro-lint: disable=RLnnn`` pragma *with a justifying comment*.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.repro_lint.engine import FileContext, Rule, Violation, register

# ---------------------------------------------------------------------------
# shared AST helpers


def _call_name(node: ast.Call) -> str | None:
    """The terminal name of a call: ``f(...)`` -> f, ``a.b.c(...)`` -> c."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_name(node: ast.Call) -> str | None:
    """For ``x.m(...)`` the receiver ``x``; for ``f().m(...)`` the ``f``."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Call):
        return _call_name(value)
    return None


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield the module and every (arbitrarily nested) function node."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes.

    Class bodies are traversed (their statements execute in the
    enclosing scope for our purposes); function and lambda bodies are
    separate scopes and get their own :func:`_scopes` visit.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# RL001 — integer-nm geometry


@register
class GeometryIntRule(Rule):
    id = "RL001"
    name = "geometry-int-nm"
    summary = (
        "float literals / true division must not flow into geometry "
        "constructors; nm coordinates stay int (use // or int())"
    )

    CTORS = frozenset({"Point", "Rect", "Polygon"})
    INT_COERCIONS = frozenset({"int", "round", "floor", "ceil", "abs", "len"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for scope in _scopes(ctx.tree):
            env = self._single_assignments(scope)
            for node in _walk_scope(scope):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if name not in self.CTORS and name != "from_center":
                    continue
                if name == "from_center" and not (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "Rect"
                ):
                    continue
                labelled = [
                    (str(index), arg) for index, arg in enumerate(node.args, start=1)
                ] + [
                    (repr(kw.arg), kw.value) for kw in node.keywords if kw.arg
                ]
                for label, arg in labelled:
                    taint = self._float_taint(arg, env, set())
                    if taint is not None:
                        offender, why = taint
                        yield self.violation(
                            ctx,
                            offender,
                            f"{why} flows into {name}() argument {label}; "
                            "nm coordinates must stay int (use // or int())",
                        )

    def _single_assignments(self, scope: ast.AST) -> dict[str, ast.expr]:
        """Names assigned exactly once in this scope (simple local flow).

        A name that is also the target of an ``x /= k`` aug-assignment
        is mapped to that division so the taint is still seen.
        """
        counts: dict[str, int] = {}
        values: dict[str, ast.expr] = {}
        divisions: dict[str, ast.expr] = {}
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    counts[target.id] = counts.get(target.id, 0) + 1
                    values[target.id] = node.value
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                counts[node.target.id] = counts.get(node.target.id, 0) + 2
                if isinstance(node.op, ast.Div):
                    divisions[node.target.id] = node.value
        env = {name: value for name, value in values.items() if counts.get(name) == 1}
        for name, value in divisions.items():
            env[name] = ast.BinOp(
                left=ast.Name(id=name, ctx=ast.Load()), op=ast.Div(), right=value
            )
        return env

    def _float_taint(
        self, node: ast.expr, env: dict[str, ast.expr], visiting: set[str]
    ) -> tuple[ast.expr, str] | None:
        """The offending sub-expression and why, or None when int-safe."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, float):
                return node, f"float literal {node.value!r}"
            return None
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return node, "true division (/)"
            return self._float_taint(node.left, env, visiting) or self._float_taint(
                node.right, env, visiting
            )
        if isinstance(node, ast.UnaryOp):
            return self._float_taint(node.operand, env, visiting)
        if isinstance(node, ast.IfExp):
            return self._float_taint(node.body, env, visiting) or self._float_taint(
                node.orelse, env, visiting
            )
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in self.INT_COERCIONS:
                return None  # explicitly coerced back to int
            if name == "float":
                return node, "float() conversion"
            return None  # unknown call: assume the callee upholds the contract
        if isinstance(node, ast.Name) and node.id not in visiting:
            value = env.get(node.id)
            if value is not None:
                taint = self._float_taint(value, env, visiting | {node.id})
                if taint is not None:
                    _, why = taint
                    # report at the use site so the pragma/fix lands there
                    return node, f"{why} (via local '{node.id}')"
        return None


# ---------------------------------------------------------------------------
# RL002 — deterministic worker code


@register
class WorkerDeterminismRule(Rule):
    id = "RL002"
    name = "worker-determinism"
    summary = (
        "code reachable from TileExecutor payloads must be deterministic: "
        "no wall-clock time, global random, id()-keyed lookups, or bare "
        "set iteration"
    )

    WALL_CLOCK = frozenset({"time", "time_ns"})
    DATETIME_NOW = frozenset({"now", "utcnow", "today"})
    GLOBAL_RANDOM = frozenset(
        {
            "random",
            "randint",
            "randrange",
            "getrandbits",
            "choice",
            "choices",
            "shuffle",
            "sample",
            "uniform",
            "gauss",
            "normalvariate",
            "expovariate",
            "betavariate",
            "triangular",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.is_worker_code():
            return
        random_imports = self._names_imported_from(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, random_imports)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and self._is_id_call(key):
                        yield self.violation(
                            ctx,
                            key,
                            "id()-keyed dict is address-dependent and differs "
                            "between workers; key by a stable identity",
                        )
            elif isinstance(node, ast.Subscript):
                if self._is_id_call(node.slice):
                    yield self.violation(
                        ctx,
                        node.slice,
                        "id()-keyed lookup is address-dependent and differs "
                        "between workers; key by a stable identity",
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                iter_expr = node.iter
                if self._is_set_expr(iter_expr):
                    yield self.violation(
                        ctx,
                        iter_expr,
                        "iteration over a set has no deterministic order; "
                        "wrap in sorted(...) before iterating in worker code",
                    )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, random_imports: frozenset[str]
    ) -> Iterator[Violation]:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module, attr = func.value.id, func.attr
            if module == "time" and attr in self.WALL_CLOCK:
                yield self.violation(
                    ctx,
                    node,
                    f"time.{attr}() reads the wall clock in worker code; "
                    "results must not depend on when a tile ran "
                    "(time.perf_counter() durations fed to timers are fine)",
                )
            elif module in {"datetime", "date"} and attr in self.DATETIME_NOW:
                yield self.violation(
                    ctx,
                    node,
                    f"{module}.{attr}() reads the wall clock in worker code",
                )
            elif module == "random" and attr in self.GLOBAL_RANDOM:
                yield self.violation(
                    ctx,
                    node,
                    f"random.{attr}() uses the process-global generator, which "
                    "is seeded per worker; pass a seeded random.Random instead",
                )
        elif isinstance(func, ast.Name) and func.id in random_imports:
            yield self.violation(
                ctx,
                node,
                f"{func.id}() from the random module uses the process-global "
                "generator; pass a seeded random.Random instead",
            )

    @staticmethod
    def _names_imported_from(tree: ast.Module, module: str) -> frozenset[str]:
        out: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == module:
                out.update(alias.asname or alias.name for alias in node.names)
        return frozenset(out)

    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        )


# ---------------------------------------------------------------------------
# RL003 — metric names from the registry


@register
class MetricNameRule(Rule):
    id = "RL003"
    name = "metric-name-registry"
    summary = (
        "metric names at emission sites must come from repro.obs.names "
        "constants, never string literals (a typo silently forks a series)"
    )

    EMIT_METHODS = frozenset({"inc", "gauge", "observe", "observe_hist", "timer"})
    READ_METHODS = frozenset({"counter", "gauge_value", "timer_stat"})
    RECEIVERS = frozenset({"registry", "reg", "metrics", "get_registry"})
    # the registry implementation and the registry of names itself
    EXCLUDED_FILES = ("obs/registry.py", "obs/names.py")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if any(ctx.rel.endswith(suffix) for suffix in self.EXCLUDED_FILES):
            return
        known = ctx.config.metric_names
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro.obs.names":
                if ctx.config.metric_helpers:
                    for alias in node.names:
                        if alias.name not in ctx.config.metric_helpers:
                            yield self.violation(
                                ctx,
                                node,
                                f"'{alias.name}' is not defined in "
                                "repro.obs.names; fix the typo or register it",
                            )
                continue
            if not isinstance(node, ast.Call):
                continue
            method = _call_name(node)
            if method not in self.EMIT_METHODS and method not in self.READ_METHODS:
                continue
            if _receiver_name(node) not in self.RECEIVERS:
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
                literal = name_arg.value
                if known is not None and literal in known:
                    yield self.violation(
                        ctx,
                        name_arg,
                        f"metric name literal {literal!r}: use the "
                        "repro.obs.names constant so the registry stays the "
                        "single source of truth",
                    )
                else:
                    yield self.violation(
                        ctx,
                        name_arg,
                        f"unregistered metric name literal {literal!r}: add it "
                        "to repro.obs.names and emit via the constant",
                    )
            elif isinstance(name_arg, ast.JoinedStr):
                yield self.violation(
                    ctx,
                    name_arg,
                    "metric name built with an f-string at the emission site; "
                    "add a helper to repro.obs.names (declare its prefix in "
                    "DYNAMIC_PREFIXES) and call that instead",
                )
            elif (
                isinstance(name_arg, ast.Attribute)
                and isinstance(name_arg.value, ast.Name)
                and name_arg.value.id == "names"
                and ctx.config.metric_helpers
                and name_arg.attr not in ctx.config.metric_helpers
            ):
                yield self.violation(
                    ctx,
                    name_arg,
                    f"names.{name_arg.attr} is not defined in repro.obs.names; "
                    "fix the typo or register it",
                )


# ---------------------------------------------------------------------------
# RL004 — no blanket except in engine code


@register
class BlanketExceptRule(Rule):
    id = "RL004"
    name = "blanket-except"
    summary = (
        "`except Exception` (or bare except) must re-raise or route to "
        "quarantine; silently swallowing engine errors hides real failures"
    )

    BLANKET = frozenset({"Exception", "BaseException"})
    # call names that count as routing the failure somewhere accounted
    ROUTING = ("quarantine", "fail")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_blanket(node.type):
                continue
            if self._handles_properly(node):
                continue
            caught = "bare except" if node.type is None else f"except {ast.unparse(node.type)}"
            yield self.violation(
                ctx,
                node,
                f"blanket {caught} without re-raise or quarantine routing; "
                "narrow the exception types, re-raise, or add a justified "
                "pragma",
            )

    def _is_blanket(self, type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Name):
            return type_node.id in self.BLANKET
        if isinstance(type_node, ast.Tuple):
            return any(self._is_blanket(elt) for elt in type_node.elts)
        return False

    def _handles_properly(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = _call_name(node) or ""
                if any(marker in name for marker in self.ROUTING):
                    return True
        return False


# ---------------------------------------------------------------------------
# RL005 — the BaseReport contract


@register
class ReportContractRule(Rule):
    id = "RL005"
    name = "report-contract"
    summary = (
        "report classes inherit BaseReport; the deprecated field spellings "
        "(is_clean, passed, *_seconds) must not come back"
    )

    DEPRECATED_ATTRS = frozenset({"is_clean", "passed"})
    SECONDS_RE = re.compile(r"^\w+_seconds$")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.rel.endswith("core/report.py"):
            return  # the contract's own definition (aliases, docs)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if node.attr in self.DEPRECATED_ATTRS:
                    yield self.violation(
                        ctx,
                        node,
                        f"deprecated report field spelling .{node.attr}; "
                        "use .ok (every report implements BaseReport)",
                    )

    def _check_class(self, ctx: FileContext, node: ast.ClassDef) -> Iterator[Violation]:
        base_names = {self._base_name(base) for base in node.bases}
        is_report_name = node.name.endswith("Report") and node.name != "BaseReport"
        inherits = "BaseReport" in base_names or any(
            name is not None and name.endswith("Report") for name in base_names
        )
        if is_report_name and not inherits:
            yield self.violation(
                ctx,
                node,
                f"class {node.name} looks like an engine report but does not "
                "inherit repro.core.report.BaseReport",
            )
        if not (is_report_name or "BaseReport" in base_names):
            return
        for item in node.body:
            name, is_alias = self._member(item)
            if name is None or is_alias:
                continue
            if name in self.DEPRECATED_ATTRS or self.SECONDS_RE.match(name):
                canonical = {
                    "is_clean": "ok",
                    "passed": "ok",
                    "elapsed_seconds": "elapsed_s",
                    "compute_seconds": "compute_s",
                }.get(name, "the *_s spelling")
                yield self.violation(
                    ctx,
                    item,
                    f"report field {name!r} re-introduces a deprecated "
                    f"spelling; use {canonical} (deprecated_alias exists for "
                    "migration)",
                )

    @staticmethod
    def _base_name(base: ast.expr) -> str | None:
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute):
            return base.attr
        return None

    @staticmethod
    def _member(item: ast.stmt) -> tuple[str | None, bool]:
        """(member name, defined via deprecated_alias?) for a class stmt."""
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return item.name, False
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            value = item.value
        elif isinstance(item, ast.Assign) and len(item.targets) == 1 and isinstance(
            item.targets[0], ast.Name
        ):
            value = item.value
        else:
            return None, False
        target = item.target if isinstance(item, ast.AnnAssign) else item.targets[0]
        is_alias = (
            isinstance(value, ast.Call) and _call_name(value) == "deprecated_alias"
        )
        assert isinstance(target, ast.Name)
        return target.id, is_alias


# ---------------------------------------------------------------------------
# RL006 — keyword-only options on the public API


@register
class KeywordOnlyApiRule(Rule):
    id = "RL006"
    name = "api-keyword-only"
    summary = (
        "options (defaulted parameters) on repro.api entry points must be "
        "keyword-only so new options never break positional callers"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.is_public_api():
            return
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            args = node.args
            defaulted = args.args[len(args.args) - len(args.defaults) :]
            for param in defaulted:
                yield self.violation(
                    ctx,
                    param,
                    f"option {param.arg!r} on public entry point "
                    f"{node.name}() must be keyword-only (move it behind *)",
                )


# ---------------------------------------------------------------------------
# RL007 — keyword-only options across the whole client surface


@register
class KeywordOnlyClientRule(Rule):
    id = "RL007"
    name = "client-keyword-only"
    summary = (
        "options (defaulted parameters) on every public callable of the "
        "client surface — repro.api and repro.service.client, including "
        "methods of public classes — must be keyword-only"
    )

    SKIP_DECORATORS = frozenset({"property", "cached_property"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        public_api = ctx.is_public_api()
        client_api = ctx.is_client_api()
        if not (public_api or client_api):
            return
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # module-level functions in repro.api are RL006's job;
                # RL007 extends the contract to the client module
                if client_api and not node.name.startswith("_"):
                    yield from self._check_callable(ctx, node, method=False)
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, node: ast.ClassDef) -> Iterator[Violation]:
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_") and item.name != "__init__":
                continue
            decorators = {
                deco.id if isinstance(deco, ast.Name) else _call_name(deco)
                if isinstance(deco, ast.Call)
                else deco.attr if isinstance(deco, ast.Attribute) else None
                for deco in item.decorator_list
            }
            if decorators & self.SKIP_DECORATORS:
                continue
            yield from self._check_callable(
                ctx, item, method="staticmethod" not in decorators
            )

    def _check_callable(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        method: bool,
    ) -> Iterator[Violation]:
        args = node.args
        defaulted = args.args[len(args.args) - len(args.defaults) :]
        for param in defaulted:
            if method and args.args and param is args.args[0]:
                continue  # self/cls can never be defaulted anyway
            yield self.violation(
                ctx,
                param,
                f"option {param.arg!r} on client-surface callable "
                f"{node.name}() must be keyword-only (move it behind *)",
            )
