"""RL011 — wire-protocol consistency across client, daemon, and docs.

The service speaks newline-delimited JSON with an ``op`` field; nothing
but convention keeps the three parties that name ops — the client that
sends them, the daemon that dispatches on them, ``protocol.OPS`` that
declares them — and the fourth that explains them (``docs/SERVICE.md``)
in agreement.  This rule makes the convention a check:

* every op the client sends must be declared in ``protocol.OPS`` and
  dispatched somewhere in the daemon;
* every declared op must appear (backticked) in ``docs/SERVICE.md``;
* error ``code`` strings on exception classes must reference the
  ``repro.service.errors`` registry — one constant per code, mirroring
  what :mod:`repro.obs.names` does for metric names — and the registry
  itself must be duplicate-free and documented.

The rule keys off path shape (``service/protocol.py`` etc.), so it
checks any project that has a service layer and stays silent for any
that does not.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from tools.repro_lint.engine import ProjectRule, Violation, register_project


@register_project
class WireProtocolRule(ProjectRule):
    id = "RL011"
    name = "wire-protocol-consistency"
    summary = (
        "client-sent ops must be declared in protocol.OPS, handled by the "
        "daemon, and documented; error codes come from the "
        "repro.service.errors registry"
    )

    def check(self, project) -> Iterator[Violation]:
        protocol = self._file(project, "service/protocol.py")
        clients = self._files(project, "service/client.py")
        daemons = self._files(project, "service/daemon.py")
        registry_file = self._file(project, "service/errors.py")

        declared: dict[str, int] = {}
        if protocol is not None:
            for op, line in protocol.wire.ops_declared:
                declared.setdefault(op, line)
        handled: set[str] = set()
        for daemon in daemons:
            handled.update(daemon.wire.ops_handled)

        doc_text = self._service_doc(protocol or registry_file)

        for client in clients:
            for op, line in sorted(set(client.wire.ops_sent)):
                if protocol is not None and op not in declared:
                    yield self.violation(
                        client.rel,
                        line,
                        1,
                        f'client sends op "{op}" that protocol.OPS does not '
                        "declare; add it to the protocol before shipping it",
                    )
                elif daemons and op not in handled:
                    yield self.violation(
                        client.rel,
                        line,
                        1,
                        f'op "{op}" is sent by the client but never '
                        "dispatched in the daemon; wire up a handler",
                    )
        if protocol is not None and doc_text is not None:
            for op, line in sorted(declared.items()):
                if f"`{op}`" not in doc_text:
                    yield self.violation(
                        protocol.rel,
                        line,
                        1,
                        f'op "{op}" is declared in protocol.OPS but not '
                        "documented in docs/SERVICE.md",
                    )

        yield from self._check_error_codes(project, registry_file, doc_text)

    # -- error-code registry --------------------------------------------
    def _check_error_codes(
        self, project, registry_file, doc_text
    ) -> Iterator[Violation]:
        registry: dict[str, str] = {}
        if registry_file is not None:
            by_value: dict[str, str] = {}
            for name, (value, line) in sorted(registry_file.wire.constants.items()):
                registry[name] = value
                if value in by_value:
                    yield self.violation(
                        registry_file.rel,
                        line,
                        1,
                        f'error code "{value}" is registered twice '
                        f"({by_value[value]} and {name}); codes are wire "
                        "contract and must be unique",
                    )
                else:
                    by_value[value] = name
                if doc_text is not None and f"`{value}`" not in doc_text:
                    yield self.violation(
                        registry_file.rel,
                        line,
                        1,
                        f'error code "{value}" ({name}) is not documented '
                        "in docs/SERVICE.md",
                    )

        for facts in project.files:
            if "service/" not in facts.rel or facts.rel.endswith(
                "service/errors.py"
            ):
                continue
            for cls_name, code, line in facts.wire.code_literals:
                yield self.violation(
                    facts.rel,
                    line,
                    1,
                    f'error code literal "{code}" on {cls_name}; define it '
                    "in repro.service.errors and reference the constant so "
                    "both ends of the wire share one registry",
                )
            if registry_file is None:
                continue
            for cls_name, const, line in facts.wire.code_refs:
                if const not in registry:
                    yield self.violation(
                        facts.rel,
                        line,
                        1,
                        f"{cls_name}.code references {const}, which "
                        "repro.service.errors does not define; fix the typo "
                        "or register it",
                    )

    # -- lookup helpers --------------------------------------------------
    @staticmethod
    def _file(project, suffix: str):
        for facts in project.files:
            if facts.rel.endswith(suffix):
                return facts
        return None

    @staticmethod
    def _files(project, suffix: str) -> list:
        return [f for f in project.files if f.rel.endswith(suffix)]

    @staticmethod
    def _service_doc(anchor) -> str | None:
        """``docs/SERVICE.md`` found by walking up from the service
        layer's own location; None (skipping doc checks) when absent."""
        if anchor is None:
            return None
        base = Path(anchor.rel).resolve().parent
        for parent in [base, *base.parents]:
            candidate = parent / "docs" / "SERVICE.md"
            if candidate.is_file():
                try:
                    return candidate.read_text(encoding="utf-8")
                except OSError:
                    return None
        return None
