"""T6 (extension) — design-rule DOE: which rules buy area?

The "manufacturability-driven design rule exploration" experiment: sweep
rule knobs one at a time, regenerate the standard cells, and measure cell
area, DRC cleanliness, and litho hotspots per candidate.

Expected shape: poly pitch and cell height dominate area (double-digit %
sensitivity); via size/enclosure are area-free at this cell template
(they hide inside the pitch) — the "relax these for yield, they cost
nothing" conclusion; pushing pitch below nominal breaks DRC before it
breaks litho.
"""

from repro.analysis import ExperimentRecord, Table
from repro.ruleopt import rule_area_sensitivity, sweep_rule_values

from conftest import run_once


def _experiment(tech):
    sensitivity = rule_area_sensitivity(tech)
    sweep = sweep_rule_values(
        tech, "poly_pitch", [160, 180, 200, 220], litho_check=True
    )
    return sensitivity, sweep


def test_t6_rule_doe(benchmark, tech45):
    sensitivity, sweep = run_once(benchmark, lambda: _experiment(tech45))

    table = Table("T6: one-at-a-time rule area sensitivity (+delta each knob)",
                  ["rule knob", "area change %"])
    for knob, value in sorted(sensitivity.items(), key=lambda kv: -kv[1]):
        table.add_row(knob, value)
    print()
    print(table.render())

    sweep_table = Table("T6: poly-pitch sweep (regenerated cells)",
                        ["pitch (nm)", "area (um2)", "DRC clean", "hotspots"])
    for point in sweep:
        sweep_table.add_row(
            float(point.overrides["poly_pitch"]),
            point.cell_area_um2,
            "yes" if point.drc_clean else "NO",
            float(point.hotspots),
        )
    print(sweep_table.render())

    record = ExperimentRecord(
        "T6", "pitch/height dominate area; via rules are area-free; sub-nominal pitch breaks DRC"
    )
    record.record("sens_poly_pitch_pct", sensitivity["poly_pitch"])
    record.record("sens_via_enclosure_pct", sensitivity["via_enclosure"])
    areas = [p.cell_area_um2 for p in sweep]
    record.record("area_at_160", areas[0])
    record.record("area_at_220", areas[-1])
    holds = (
        sensitivity["poly_pitch"] > 5.0
        and abs(sensitivity["via_enclosure"]) < 0.5
        and not sweep[0].drc_clean
        and all(p.drc_clean for p in sweep[1:])
        and areas == sorted(areas)
    )
    record.conclude(holds)
    print(record.render())
    assert holds
