"""A6 (extension) — defect-model fitting from test-structure yields.

The fab half of yield learning: synthesize comb/serpentine monitor fail
counts from a known defect model (D0 = 2.5/cm², x0 = 45 nm), then fit the
model back from the observations alone.

Expected shape: D0 recovered within ~15% when x0 is known; the joint
(D0, x0) fit lands within one grid step of the true peak (the ridge is
shallow — identifiability requires a sub-peak monitor, which the suite
includes); the fitted model's predictions match observed fail fractions.
"""

import numpy as np

from repro.analysis import ExperimentRecord, Table
from repro.designgen import comb_structure, serpentine
from repro.yieldmodels import (
    MonitorObservation,
    fit_d0,
    fit_defect_model,
    predict_fail_fraction,
)
from repro.yieldmodels.dsd import DefectSizeDistribution

from conftest import run_once

TRUE_D0 = 2.5
TRUE_X0 = 45.0
REPLICAS = 200_000
DIES = 20_000
GRID = [30.0, 38.0, 45.0, 55.0, 70.0]


def _experiment():
    rng = np.random.default_rng(5)
    dsd_true = DefectSizeDistribution(TRUE_X0, 1800)
    monitors = {
        "comb 25/25": comb_structure(25, 25, 40, 6000),
        "comb 45/45": comb_structure(45, 45, 30, 6000),
        "comb 90/90": comb_structure(90, 90, 20, 6000),
        "serpentine 45/90": serpentine(45, 90, 30, 6000),
    }
    observations = []
    rows = []
    for name, region in monitors.items():
        p_true = predict_fail_fraction(region, dsd_true, TRUE_D0, REPLICAS)
        fails = int(rng.binomial(DIES, p_true))
        observations.append(MonitorObservation(name, region, DIES, fails, REPLICAS))
        rows.append((name, p_true, fails / DIES))
    d0_known_x0 = fit_d0(observations, dsd_true)
    joint = fit_defect_model(observations, x0_grid_nm=GRID, x_max_nm=1800)
    return rows, d0_known_x0, joint


def test_a6_defect_fitting(benchmark):
    rows, d0_hat, joint = run_once(benchmark, _experiment)

    table = Table(
        f"A6: monitor fail fractions (true D0={TRUE_D0}, x0={TRUE_X0})",
        ["monitor", "model P(fail)", "observed"],
    )
    for name, p_true, observed in rows:
        table.add_row(name, p_true, observed)
    print()
    print(table.render())
    print(f"fitted D0 (x0 known): {d0_hat:.3f} /cm^2")
    print(f"joint fit: D0 {joint.d0_per_cm2:.3f} /cm^2, x0 {joint.x0_nm:g} nm")

    record = ExperimentRecord(
        "A6", "the defect model is recoverable from monitor yields"
    )
    record.record("d0_hat_known_x0", d0_hat)
    record.record("d0_hat_joint", joint.d0_per_cm2)
    record.record("x0_hat_joint", joint.x0_nm)
    idx_err = abs(GRID.index(joint.x0_nm) - GRID.index(TRUE_X0))
    holds = abs(d0_hat - TRUE_D0) / TRUE_D0 < 0.15 and idx_err <= 1
    record.conclude(holds)
    print(record.render())
    assert holds
