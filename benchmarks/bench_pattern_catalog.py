"""F3 — layout pattern catalogs: frequency distribution, coverage, and
KL divergence between design styles.

Reproduces the 28 nm via-enclosure study's headline numbers on synthetic
designs: the catalog frequency distribution is heavy-tailed (the top-10
categories cover >= 90% of via instances), same-generator designs have
near-zero KL divergence, and different styles (random logic vs SRAM) have
clearly positive divergence.
"""

from repro.analysis import ExperimentRecord, Table
from repro.designgen import LogicBlockSpec, generate_logic_block, generate_sram_array
from repro.patterns import kl_divergence, via_enclosure_catalog

from conftest import run_once


def _experiment(tech, stdlib):
    blocks = {
        "logicA": generate_logic_block(
            tech, LogicBlockSpec(rows=4, row_width_nm=10000, net_count=48, seed=1), stdlib
        ).top,
        "logicB": generate_logic_block(
            tech, LogicBlockSpec(rows=4, row_width_nm=10000, net_count=48, seed=2), stdlib
        ).top,
    }
    sram = generate_sram_array(tech, rows=10, cols=10)
    blocks["sram"] = sram.top_cell().flattened()

    L = tech.layers
    catalogs = {}
    for name, cell in blocks.items():
        via = L.via1 if name != "sram" else L.contact
        metal = L.metal2 if name != "sram" else L.metal1
        catalogs[name] = via_enclosure_catalog(cell, via, metal, radius=100)
    return catalogs


def test_f3_pattern_catalog(benchmark, tech45, stdlib45):
    catalogs = run_once(benchmark, lambda: _experiment(tech45, stdlib45))

    table = Table(
        "F3: via-enclosure catalogs",
        ["design", "instances", "categories", "top-10 coverage", "cats for 90%"],
    )
    for name, catalog in catalogs.items():
        table.add_row(
            name,
            float(catalog.total),
            float(len(catalog)),
            catalog.coverage(10),
            float(catalog.categories_for_coverage(0.9)),
        )
    print()
    print(table.render())

    kl_same = kl_divergence(catalogs["logicA"], catalogs["logicB"])
    kl_cross = kl_divergence(catalogs["logicA"], catalogs["sram"])
    kl_table = Table("F3: KL divergence between designs", ["pair", "KL"])
    kl_table.add_row("logicA vs logicB (same style)", kl_same)
    kl_table.add_row("logicA vs sram (different style)", kl_cross)
    print(kl_table.render())

    record = ExperimentRecord(
        "F3", "top-10 categories cover >=90%; KL ~0 same-style, >0 cross-style"
    )
    min_cov = min(c.coverage(10) for c in catalogs.values())
    record.record("min_top10_coverage", min_cov)
    record.record("kl_same_style", kl_same)
    record.record("kl_cross_style", kl_cross)
    holds = min_cov >= 0.9 and kl_cross > 5 * max(kl_same, 1e-9)
    record.conclude(holds)
    print(record.render())
    assert holds
