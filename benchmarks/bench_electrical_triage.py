"""A4 (extension) — electrical triage of litho hotspots.

One of the panel's sharpest criticisms of early DFM tooling: raw hotspot
counts overstate risk, because a bridge inside one net is electrically
benign.  With connectivity extraction the triage becomes automatic:
every hotspot is classified as killer-short / benign / potential-open.

Expected shape: a non-trivial fraction of detected hotspots is
electrically meaningful (the tool is not crying wolf), and the triage
covers every hotspot (no unmapped leftovers beyond markers that fall on
fill-free space).
"""

from repro.analysis import ExperimentRecord, Table
from repro.extract import electrical_hotspot_impact, extract_nets
from repro.litho import LithoModel, scan_full_chip

from conftest import run_once


def _experiment(tech, block):
    model = LithoModel(tech.litho)
    m1 = block.top.region(tech.layers.metal1)
    scan = scan_full_chip(model, m1, tile_nm=4000, pinch_limit=tech.metal_width // 2)
    netlist = extract_nets(block.top.flattened(), tech)
    counts = electrical_hotspot_impact(netlist, scan.hotspots, tech.layers.metal1)
    return len(scan.hotspots), counts


def test_a4_electrical_triage(benchmark, tech45, bench_block):
    total, counts = run_once(benchmark, lambda: _experiment(tech45, bench_block))

    table = Table("A4: electrical triage of litho hotspots", ["class", "count"])
    for name, value in counts.items():
        table.add_row(name, float(value))
    table.add_row("total", float(total))
    print()
    print(table.render())

    record = ExperimentRecord(
        "A4", "hotspots triage into electrical classes; opens dominate a line-end-rich block"
    )
    mapped = total - counts["unmapped"]
    record.record("total", total)
    record.record("mapped_fraction", mapped / total if total else 1.0)
    record.record("potential_opens", counts["potential_open"])
    record.record("killer_shorts", counts["killer_short"])
    holds = total > 0 and mapped / total > 0.9 and counts["potential_open"] > 0
    record.conclude(holds)
    print(record.render())
    assert holds
