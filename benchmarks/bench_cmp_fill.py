"""F5 — CMP density management: dummy fill flattens density and thickness.

Workload: a block that is dense on the left (logic-like stripes) and
almost empty on the right (analog-like keep-clear) — the worst case for
density-driven polish.

Expected shape: fill cuts the window density range by >= 2x and the
post-CMP thickness range shrinks proportionally (the model is linear in
density).  The smart-fill comparison quantifies the timing trade-off:
protecting a critical net zeroes its coupling proxy at a bounded
uniformity cost.
"""

from dataclasses import replace

from repro.analysis import ExperimentRecord, Table
from repro.cmp import coupling_proxy, density_map, dummy_fill, smart_fill, thickness_map
from repro.geometry import Rect, Region

from conftest import run_once


def _experiment(tech):
    extent = Rect(0, 0, 30000, 15000)
    # left half: dense stripes; right half: one lonely wire
    stripes = [Rect(0, y, 14000, y + 200) for y in range(0, 15000, 400)]
    lonely = [Rect(20000, 7000, 28000, 7200)]
    signal = Region(stripes + lonely)
    settings = replace(tech.cmp, window_nm=5000, step_nm=2500)

    before_density = density_map(signal, extent, settings.window_nm)
    before_thickness = thickness_map(before_density, settings)
    fill, report = dummy_fill(
        signal, extent, settings, fill_size=400, fill_space=200, keepout=300
    )
    after_density = density_map(signal | fill, extent, settings.window_nm)
    after_thickness = thickness_map(after_density, settings)

    # smart-fill trade-off: treat the lonely wire as a critical net
    critical = Region(lonely)
    smart, _ = smart_fill(
        signal, extent, settings, critical, fill_size=400, fill_space=200, keepout=300
    )
    cp_normal = coupling_proxy(signal, fill, reach_nm=400, critical=critical)
    cp_smart = coupling_proxy(signal, smart, reach_nm=400, critical=critical)
    smart_density = density_map(signal | smart, extent, settings.window_nm)
    return (
        before_density, before_thickness, after_density, after_thickness, report,
        cp_normal, cp_smart, smart_density,
    )


def test_f5_cmp_fill(benchmark, tech45):
    (before_d, before_t, after_d, after_t, report,
     cp_normal, cp_smart, smart_d) = run_once(benchmark, lambda: _experiment(tech45))

    table = Table(
        "F5: density/thickness before and after dummy fill",
        ["metric", "before", "after", "improvement"],
    )
    table.add_row("density range", before_d.range, after_d.range,
                  before_d.range / max(after_d.range, 1e-9))
    table.add_row("density std", before_d.std, after_d.std,
                  before_d.std / max(after_d.std, 1e-9))
    table.add_row("thickness range (nm)", before_t.range, after_t.range,
                  before_t.range / max(after_t.range, 1e-9))
    print()
    print(table.render())
    print(report.summary())

    smart_table = Table(
        "F5: smart fill vs blanket fill (critical-net coupling proxy)",
        ["flow", "critical coupling (nm)", "density range"],
    )
    smart_table.add_row("blanket fill", float(cp_normal.critical_coupling_perimeter_nm), after_d.range)
    smart_table.add_row("smart fill", float(cp_smart.critical_coupling_perimeter_nm), smart_d.range)
    print(smart_table.render())

    record = ExperimentRecord(
        "F5", "fill cuts density range >=2x; smart fill protects critical nets cheaply"
    )
    record.record("density_range_ratio", before_d.range / max(after_d.range, 1e-9))
    record.record("thickness_range_before_nm", before_t.range)
    record.record("thickness_range_after_nm", after_t.range)
    record.record("critical_coupling_blanket_nm", cp_normal.critical_coupling_perimeter_nm)
    record.record("critical_coupling_smart_nm", cp_smart.critical_coupling_perimeter_nm)
    holds = (
        before_d.range >= 2 * after_d.range
        and before_t.range >= 2 * after_t.range
        and report.shapes_added > 0
        and cp_smart.critical_coupling_perimeter_nm < cp_normal.critical_coupling_perimeter_nm
        and smart_d.range <= after_d.range + 0.1
    )
    record.conclude(holds)
    print(record.render())
    assert holds
