"""F1 — yield vs defect density, baseline vs CAA-optimized layout.

The critical-area argument: after routing, a channel usually has white
space; redistributing wires across it (spreading) and fattening them
where room remains (widening) cuts both short- and open-critical area.
The payoff grows as the process gets dirtier (higher D0) — the yield-ramp
regime where DFM pays most.

Workload: a 24-wire routing channel at minimum pitch inside a channel
with ~90% gap headroom (the post-route slack spreading consumes).

Expected shape: the optimized curve lies above the baseline everywhere,
with the absolute gap growing with D0.
"""

from repro.analysis import ExperimentRecord, Series, Table
from repro.geometry import Rect, Region
from repro.yieldmodels import (
    weighted_critical_area,
    widen_wires,
    yield_negative_binomial,
)
from repro.yieldmodels.dsd import DefectSizeDistribution
from repro.yieldmodels.wire_spread import redistribute_channel

from conftest import run_once

D0_SWEEP = [0.01, 0.03, 0.1, 0.3, 1.0, 3.0]
DIE_SCALE = 2.0e12  # the channel pattern tiles a 0.02 cm^2 die


def _experiment(tech):
    w, s = tech.metal_width, tech.metal_space
    pitch = w + s
    n_wires = 24
    wires = Region([Rect(0, i * pitch, 12000, i * pitch + w) for i in range(n_wires)])
    channel_hi = int(n_wires * w + (n_wires - 1) * s * 1.9)
    spread, _ = redistribute_channel(wires, s, 0, channel_hi)
    optimized, _ = widen_wires(spread, s, tech.via_enclosure)

    dsd = DefectSizeDistribution(tech.defects.x0_nm, tech.defects.max_size_nm)
    scale = DIE_SCALE / wires.bbox.area
    ca_base = sum(weighted_critical_area(wires, dsd, m) for m in ("shorts", "opens"))
    ca_opt = sum(weighted_critical_area(optimized, dsd, m) for m in ("shorts", "opens"))

    rows = []
    for d0 in D0_SWEEP:
        lam_base = d0 * ca_base / 1e14 * scale
        lam_opt = d0 * ca_opt / 1e14 * scale
        rows.append(
            (
                d0,
                yield_negative_binomial(lam_base, 2.0),
                yield_negative_binomial(lam_opt, 2.0),
            )
        )
    return ca_base, ca_opt, rows


def test_f1_yield_curves(benchmark, tech45):
    ca_base, ca_opt, rows = run_once(benchmark, lambda: _experiment(tech45))

    table = Table(
        "F1: yield vs D0 (routing channel, baseline vs CAA-optimized)",
        ["D0/cm2", "Y baseline", "Y optimized", "gap (pts)"],
    )
    base_series = Series("baseline")
    opt_series = Series("optimized")
    for d0, y_base, y_opt in rows:
        table.add_row(d0, y_base, y_opt, 100 * (y_opt - y_base))
        base_series.add(d0, y_base)
        opt_series.add(d0, y_opt)
    print()
    print(f"weighted critical area: {ca_base:.3g} -> {ca_opt:.3g} nm^2 "
          f"({100 * (1 - ca_opt / ca_base):.0f}% reduction)")
    print(table.render())

    record = ExperimentRecord(
        "F1", "CAA optimization shifts the yield curve up; gap grows with D0"
    )
    gaps = [y_opt - y_base for _, y_base, y_opt in rows]
    record.record("ca_reduction_fraction", 1 - ca_opt / ca_base)
    record.record("gap_at_low_d0_pts", 100 * gaps[0])
    record.record("max_gap_pts", 100 * max(gaps))
    above = all(g >= -1e-12 for g in gaps)
    growing = max(gaps) > 10 * max(gaps[0], 1e-9)
    meaningful = ca_opt < 0.8 * ca_base
    record.conclude(above and growing and meaningful)
    print(record.render())
    assert above and growing and meaningful
