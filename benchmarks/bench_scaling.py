"""T5 — engine throughput vs design size.

Each engine (DRC, pattern extraction, critical area, litho hotspot scan)
runs on logic blocks of growing size; the table reports wall time and the
scaling exponent.

Expected shape: DRC, pattern extraction, and CAA stay near-linear in
shape count (sub-quadratic exponent); the litho scan cost is dominated by
the simulated window area rather than the shape count.
"""

import math
import time

from repro.analysis import ExperimentRecord, Table
from repro.designgen import LogicBlockSpec, generate_logic_block
from repro.drc import run_drc
from repro.geometry import Rect
from repro.litho import LithoModel, find_hotspots
from repro.patterns import extract_patterns, via_anchors
from repro.yieldmodels import critical_area_shorts

from conftest import run_once

WIDTHS = [3000, 6000, 12000, 24000]


def _experiment(tech, stdlib):
    L = tech.layers
    rows = []
    for width in WIDTHS:
        spec = LogicBlockSpec(rows=2, row_width_nm=width, net_count=width // 500, seed=9)
        block = generate_logic_block(tech, spec, stdlib)
        shapes = block.top.shape_count(recursive=True)
        timings = {}

        t0 = time.perf_counter()
        run_drc(block.top, tech.rules.minimum().for_layer(L.metal1))
        timings["drc"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        extract_patterns(block.top, [L.via1, L.metal2], via_anchors(block.top, L.via1), 150)
        timings["patterns"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        critical_area_shorts(block.top.region(L.metal1), 2 * tech.metal_space)
        timings["critical-area"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        model = LithoModel(tech.litho)
        bb = block.top.bbox
        window = Rect(bb.x0, bb.y0, bb.x0 + 2000, bb.y1)
        find_hotspots(model, block.top.region(L.metal1), window,
                      pinch_limit=tech.metal_width // 2)
        timings["litho-scan"] = time.perf_counter() - t0

        rows.append((width, shapes, timings))
    return rows


def _exponent(xs, ys):
    """Least-squares slope in log-log space."""
    n = len(xs)
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-6)) for y in ys]
    mx, my = sum(lx) / n, sum(ly) / n
    num = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    den = sum((a - mx) ** 2 for a in lx)
    return num / den


def test_t5_scaling(benchmark, tech45, stdlib45):
    rows = run_once(benchmark, lambda: _experiment(tech45, stdlib45))

    engines = ["drc", "patterns", "critical-area", "litho-scan"]
    table = Table(
        "T5: engine wall time (s) vs design size",
        ["width (nm)", "shapes"] + engines,
    )
    for width, shapes, timings in rows:
        table.add_row(float(width), float(shapes), *(timings[e] for e in engines))
    print()
    print(table.render())

    shapes = [r[1] for r in rows]
    record = ExperimentRecord(
        "T5", "geometric engines scale sub-quadratically in shape count"
    )
    holds = True
    for engine in ("drc", "patterns", "critical-area"):
        exp = _exponent(shapes, [r[2][engine] for r in rows])
        record.record(f"exponent:{engine}", exp)
        holds = holds and exp < 2.0
    litho_exp = _exponent(shapes, [r[2]["litho-scan"] for r in rows])
    record.record("exponent:litho-scan", litho_exp)
    # the litho window is fixed-height: cost should grow far slower than
    # the design (it tracks window area, not shapes)
    holds = holds and litho_exp < 1.0
    record.conclude(holds)
    print(record.render())
    assert holds
