"""F2 — process-window behaviour: no-OPC vs rule-OPC vs model-OPC.

Metrics: PV-band area (geometry that flips across the dose/defocus
corners) and the CD error at nominal, on the canonical structures —
dense lines, isolated line, and a 2-D line-end/elbow cell.

Expected shape: model OPC achieves the best nominal CD fidelity by a wide
margin (that is what EPE iteration optimizes); the PV band, by contrast,
is nearly mask-invariant — single-exposure OPC moves the printed edge but
cannot change its dose/defocus *sensitivity*, which is set by the image
slope.  (In production the band is attacked with SRAFs and illumination
co-optimization, whose constructive-interference physics a scalar
incoherent model deliberately does not carry — see EXPERIMENTS.md.)  OPC
must not degrade the band materially either.
"""

from repro.analysis import ExperimentRecord, Table
from repro.designgen import isolated_line, line_grating
from repro.geometry import Point, Rect, Region
from repro.litho import Cutline
from repro.litho.process import pv_band_area
from repro.opc import ModelOpcSettings, apply_model_opc, apply_rule_opc

from conftest import run_once


def _structures(tech):
    w, p = tech.metal_width, tech.metal_pitch
    dense = line_grating(w, p, 9, 2000)
    iso = isolated_line(w, 2000, Point(0, 0))
    elbow = Region(
        [Rect(0, 0, w, 900), Rect(0, 900 - w, 600, 900), Rect(0, 1000, w, 1900)]
    )
    return {
        "dense": (dense, Rect(2 * p, 800, 7 * p, 1200), Cutline(Point(4 * p + w // 2, 1000))),
        "iso": (iso, Rect(-200, 800, w + 200, 1200), Cutline(Point(w // 2, 1000))),
        "2d-elbow": (elbow, Rect(-150, 700, 700, 1150), Cutline(Point(w // 2, 800))),
    }


def _experiment(tech, model):
    results = {}
    for name, (drawn, window, cut) in _structures(tech).items():
        masks = {"none": drawn, "rule-opc": apply_rule_opc(drawn)}
        opc = apply_model_opc(
            drawn, model, settings=ModelOpcSettings(pw_aware=True, iterations=8)
        )
        masks["model-opc"] = opc.mask
        for flavour, mask in masks.items():
            band = pv_band_area(model, mask, window, grid=2)
            cd = model.measure_cd(mask, cut, grid=2)
            results[(name, flavour)] = (band, cd)
    return results


def test_f2_process_window(benchmark, tech45, litho45):
    results = run_once(benchmark, lambda: _experiment(tech45, litho45))

    target = tech45.metal_width
    table = Table(
        "F2: PV-band area and nominal CD by OPC flavour",
        ["structure", "opc", "pv band (nm2)", "CD (nm)", "|CD err|"],
    )
    for (structure, flavour), (band, cd) in results.items():
        table.add_row(structure, flavour, band, cd, abs(cd - target))
    print()
    print(table.render())

    record = ExperimentRecord(
        "F2",
        "model OPC wins CD fidelity on marginal structures; PV band is "
        "nearly mask-invariant (placement vs sensitivity)",
    )
    for key_structure in ("iso", "2d-elbow"):
        err_none = abs(results[(key_structure, "none")][1] - target)
        err_model = abs(results[(key_structure, "model-opc")][1] - target)
        record.record(f"cd_err_none:{key_structure}", err_none)
        record.record(f"cd_err_model:{key_structure}", err_model)
        record.record(
            f"band_ratio_model:{key_structure}",
            results[(key_structure, "model-opc")][0]
            / max(results[(key_structure, "none")][0], 1),
        )
    fidelity = all(
        abs(results[(s, "model-opc")][1] - target)
        < abs(results[(s, "none")][1] - target)
        for s in ("iso", "2d-elbow")
    ) and abs(results[("dense", "model-opc")][1] - target) < 1.0
    band_bounded = all(
        results[(s, "model-opc")][0] <= 1.25 * results[(s, "none")][0]
        for s in ("dense", "iso", "2d-elbow")
    )
    record.conclude(fidelity and band_bounded)
    print(record.render())
    assert fidelity and band_bounded
