"""T2 — the DRC vs DRC-Plus escape table.

The argument for pattern-based checking: configurations that pass every
dimensional design rule but fail lithography.  We build a block whose
weak spots are *exactly at* the minimum rules (DRC-clean by construction),
run minimum DRC and litho verification, then show a pattern matcher built
from known-bad snippets catches the escapes.

Expected shape: DRC reports zero violations on the weak-spot strip while
litho finds a strictly positive hotspot population there, most of which
the pattern library flags.
"""

from repro.analysis import ExperimentRecord, Table
from repro.designgen import LogicBlockSpec, generate_logic_block
from repro.drc import run_drc
from repro.geometry import Rect
from repro.litho import LithoModel, find_hotspots
from repro.patterns import PatternMatcher, extract_snippets

from conftest import run_once


def _experiment(tech, stdlib):
    spec = LogicBlockSpec(rows=2, row_width_nm=6000, net_count=8, seed=13, weak_spots=10)
    block = generate_logic_block(tech, spec, stdlib)
    L = tech.layers
    # the weak-spot strip sits above the cell rows
    strip = Rect(0, spec.rows * tech.cell_height, block.top.bbox.x1, block.top.bbox.y1)

    drc = run_drc(block.top, tech.rules.minimum().for_layer(L.metal1), window=strip)
    m1 = block.top.region(L.metal1)
    model = LithoModel(tech.litho)
    hotspots = find_hotspots(model, m1, strip, pinch_limit=tech.metal_width // 2)

    # library: snippets at the first two hotspot sites
    anchors = [h.marker.center for h in hotspots]
    matcher = PatternMatcher(radius=120)
    for snippet in extract_snippets(block.top, [L.metal1], anchors[:2], 120):
        matcher.add_snippet(snippet, severity="error")
    matches = matcher.scan(block.top, [L.metal1], anchors)
    caught = len({m.anchor for m in matches})
    return drc, hotspots, caught


def test_t2_drc_plus_escapes(benchmark, tech45, stdlib45):
    drc, hotspots, caught = run_once(benchmark, lambda: _experiment(tech45, stdlib45))

    table = Table("T2: DRC vs DRC-Plus on the weak-spot strip", ["check", "findings"])
    table.add_row("minimum DRC violations", float(len(drc)))
    table.add_row("litho hotspots (escapes)", float(len(hotspots)))
    table.add_row("escapes caught by 2-pattern library", float(caught))
    print()
    print(table.render())

    record = ExperimentRecord("T2", "DRC-clean layouts still fail litho; patterns catch them")
    record.record("drc_violations", len(drc))
    record.record("hotspot_escapes", len(hotspots))
    record.record("pattern_caught", caught)
    holds = len(drc) == 0 and len(hotspots) > 0 and caught > 0
    record.conclude(holds)
    print(record.render())
    assert holds
