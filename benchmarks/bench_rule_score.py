"""F6 — validating the DFM scoring model: compliance score vs yield proxy.

Generate a family of serpentine/grating layouts sweeping from
minimum-rule to fully recommended-rule dimensions, score each against the
recommended deck, and measure its defect-limited yield proxy.

Expected shape: the composite DFM score rises monotonically along the
sweep, and so does the yield proxy — score is a cheap static predictor of
the expensive simulated metric (the scoring-model methodology's central
claim).
"""

import numpy as np

from repro.analysis import ExperimentRecord, Table
from repro.designgen import line_grating
from repro.drc import score_recommended_rules
from repro.layout import Cell
from repro.yieldmodels import yield_negative_binomial
from repro.yieldmodels.yield_model import layer_defect_lambda

from conftest import run_once

DIE_SCALE_AREA = 2.0e13  # extrapolate the pattern to a fraction of a die


def _experiment(tech):
    L = tech.layers
    rows = []
    # sweep width/space together from min-rule to recommended and beyond
    for factor in (1.0, 1.1, 1.25, 1.4, 1.6):
        w = int(tech.metal_width * factor)
        s = int(tech.metal_space * factor)
        region = line_grating(w, w + s, 20, 12000)
        cell = Cell(f"G{int(factor * 100)}")
        cell.add_region(L.metal1, region)
        score = score_recommended_rules(cell, tech.rules)
        lam = layer_defect_lambda(region, tech.defects, d0_per_cm2=1.0)
        lam *= DIE_SCALE_AREA / region.bbox.area
        yield_proxy = yield_negative_binomial(lam, 2.0)
        rows.append((factor, score.composite, yield_proxy))
    return rows


def test_f6_rule_score_vs_yield(benchmark, tech45):
    rows = run_once(benchmark, lambda: _experiment(tech45))

    table = Table(
        "F6: recommended-rule compliance score vs yield proxy",
        ["dimension factor", "DFM score", "yield proxy"],
    )
    for factor, score, y in rows:
        table.add_row(factor, score, y)
    print()
    print(table.render())

    scores = [r[1] for r in rows]
    yields = [r[2] for r in rows]
    corr = float(np.corrcoef(scores, yields)[0, 1])

    record = ExperimentRecord("F6", "DFM score correlates monotonically with yield proxy")
    record.record("score_range", scores[-1] - scores[0])
    record.record("yield_range", yields[-1] - yields[0])
    record.record("pearson_r", corr)
    monotone_score = all(b >= a - 1e-9 for a, b in zip(scores, scores[1:]))
    monotone_yield = all(b >= a - 1e-9 for a, b in zip(yields, yields[1:]))
    holds = monotone_score and monotone_yield and corr > 0.8
    record.conclude(holds)
    print(record.render())
    assert holds
