"""Shared fixtures and helpers for the experiment benches.

Every bench regenerates one table/figure from DESIGN.md §3.  The heavy
computations run exactly once per bench (``benchmark.pedantic`` with one
round); the printed tables are the reproduced rows — run with ``-s`` to
see them, and see EXPERIMENTS.md for the recorded outcomes.
"""

from __future__ import annotations

import pytest

from repro.designgen import LogicBlockSpec, generate_logic_block, make_stdcell_library
from repro.litho import LithoModel
from repro.tech import make_node


def pytest_collection_modifyitems(items):
    """Every bench is a heavy experiment: mark them all ``slow`` so CI
    can split quick tests from the benchmark tier (``-m "not slow"``)."""
    for item in items:
        item.add_marker(pytest.mark.slow)


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def obs_registry(benchmark):
    """A fresh, enabled :class:`MetricsRegistry` scoped to one bench.

    Whatever the instrumented engines record during the bench lands in
    the benchmark JSON (``extra_info["metrics.counters"]`` and the
    per-stage timer totals) so ``BENCH_*.json`` tracks engine-level
    counts — tiles simulated, cache hits, OPC iterations — alongside
    wall-clock numbers across PRs.
    """
    from repro.obs import MetricsRegistry, get_registry, set_registry

    previous = get_registry()
    registry = MetricsRegistry()
    registry.enable()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
        snap = registry.snapshot()
        benchmark.extra_info["metrics.counters"] = snap["counters"]
        benchmark.extra_info["metrics.gauges"] = snap.get("gauges", {})
        benchmark.extra_info["metrics.stages"] = {
            name: round(stat["total"], 6) for name, stat in snap["timers"].items()
        }


@pytest.fixture(scope="session")
def tech45():
    return make_node(45)


@pytest.fixture(scope="session")
def tech32():
    return make_node(32)


@pytest.fixture(scope="session")
def litho45(tech45):
    return LithoModel(tech45.litho)


@pytest.fixture(scope="session")
def stdlib45(tech45):
    return make_stdcell_library(tech45)


@pytest.fixture(scope="session")
def bench_block(tech45, stdlib45):
    """The standard evaluation block used by several benches."""
    spec = LogicBlockSpec(rows=3, row_width_nm=8000, net_count=16, seed=7, weak_spots=12)
    return generate_logic_block(tech45, spec, stdlib45)
