"""T1 — the headline Hit-or-Hype scorecard.

Reproduces the panel's central table: per DFM technique, the measured
benefit (yield points, hotspots removed), the cost (area, mask complexity,
runtime), and the verdict.

Expected shape: litho-targeted techniques (OPC flavours, pattern checking)
and redundant vias come out HIT; blanket recommended rules pay area for
little measurable benefit on an already-legal block (the panel's 'hype'
suspicion); wire spreading and dummy fill are marginal on a small sparse
block and shine only on dense designs (see F1/F5).
"""

from repro.analysis import ExperimentRecord
from repro.core import Verdict, evaluate_techniques

from conftest import run_once


def test_t1_scorecard(benchmark, bench_block, tech45, obs_registry):
    card = run_once(
        benchmark,
        lambda: evaluate_techniques(bench_block.top, tech45, d0_per_cm2=1.0),
    )
    print()
    print(card.render())

    record = ExperimentRecord(
        "T1",
        "litho-targeted techniques are hits; redundant vias pay their way "
        "(B/C >= 1); blanket recommended rules do not",
    )
    verdicts = {row.technique: row.verdict for row in card.rows}
    ratios = {row.technique: row.ratio for row in card.rows}
    for row in card.rows:
        record.record(f"benefit:{row.technique}", row.benefit)
        record.record(f"cost:{row.technique}", row.cost)
    litho_hits = all(
        verdicts[name] is Verdict.HIT
        for name in ("rule-opc", "pattern-check", "model-opc")
    )
    vias_pay = ratios["redundant-via"] >= 1.0
    rules_hype = verdicts["recommended-rules"] is not Verdict.HIT
    holds = litho_hits and vias_pay and rules_hype
    record.conclude(holds)
    print(record.render())
    assert holds
