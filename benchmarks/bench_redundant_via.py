"""T3 — redundant-via insertion: coverage, yield gain, area cost.

Expected shape: high coverage (>= 60-90% of single-via sites get a second
cut), via-failure lambda drops quadratically at covered sites, and the
metal cost is a fraction of a percent of the block area.
"""

from repro.analysis import ExperimentRecord, Table
from repro.core import DesignContext, measure_design
from repro.designgen import LogicBlockSpec, generate_logic_block
from repro.yieldmodels import insert_redundant_vias

from conftest import run_once


def _experiment(tech, stdlib):
    rows = []
    for seed in (3, 4, 5):
        spec = LogicBlockSpec(rows=3, row_width_nm=8000, net_count=24, seed=seed)
        block = generate_logic_block(tech, spec, stdlib)
        ctx = DesignContext.from_cell(block.top, tech)
        base = measure_design(ctx, d0_per_cm2=0.1)
        work = ctx.copy()
        report = insert_redundant_vias(work.cell, tech, via_layer=tech.layers.via1)
        report2 = insert_redundant_vias(work.cell, tech, via_layer=tech.layers.via2)
        report.total_vias += report2.total_vias
        report.already_redundant += report2.already_redundant
        report.inserted += report2.inserted
        report.unfixable += report2.unfixable
        report.added_metal_area += report2.added_metal_area
        work.invalidate()
        after = measure_design(work, d0_per_cm2=0.1)
        rows.append((seed, report, base, after))
    return rows


def test_t3_redundant_via(benchmark, tech45, stdlib45):
    rows = run_once(benchmark, lambda: _experiment(tech45, stdlib45))

    table = Table(
        "T3: redundant-via insertion (metal adds are in free space, not die growth)",
        ["seed", "sites", "coverage", "lam_via before", "lam_via after", "added metal %"],
    )
    for seed, report, base, after in rows:
        table.add_row(
            str(seed),
            float(report.total_vias),
            report.coverage,
            base.lambda_vias,
            after.lambda_vias,
            100.0 * report.added_metal_area / base.area_nm2,
        )
    print()
    print(table.render())

    record = ExperimentRecord(
        "T3", "coverage 60-100%, quadratic via-lambda drop, small metal cost"
    )
    coverages = [report.coverage for _, report, _, _ in rows]
    record.record("min_coverage", min(coverages))
    drops = [
        (base.lambda_vias - after.lambda_vias) / base.lambda_vias
        for _, _, base, after in rows
        if base.lambda_vias > 0
    ]
    record.record("min_lambda_drop", min(drops))
    area_costs = [
        100.0 * report.added_metal_area / base.area_nm2 for _, report, base, _ in rows
    ]
    record.record("max_area_cost_pct", max(area_costs))
    holds = min(coverages) >= 0.6 and min(drops) > 0.5 and max(area_costs) < 4.0
    record.conclude(holds)
    print(record.render())
    assert holds
