"""M1 (matrix) — compliance-matrix throughput and window dedup.

The matrix engine's claim is that library-scale coverage is cheap
because abutment windows repeat: drive strengths that share gate
geometry produce identical windows, and the content-addressed store
collapses them to one computation each.  This bench runs the full
generated library — every ordered pair, both flips, two litho corners
plus DPT — and measures scenarios/second and the store hit rate from
duplicate windows.

Expected shape: on the stock 7-cell library well over half the
scenarios are served from the store (the drive-strength twins guarantee
it); the acceptance bar is a hit rate above 0.3.
"""

from __future__ import annotations

from repro.analysis import ExperimentRecord, Table
from repro.matrix import MatrixSpec, run_matrix

from conftest import run_once

SPEC = MatrixSpec(nodes=(45,), corners=2)  # whole library, both checks
JOBS = 2


def test_m1_matrix_dedup(benchmark, obs_registry):
    report = run_once(benchmark, lambda: run_matrix(SPEC, jobs=JOBS))

    scenarios_per_sec = report.scenario_count / max(report.elapsed_s, 1e-9)
    hit_rate = report.store.get("hit_rate", 0.0)

    table = Table(
        f"M1: {len(report.cells)} cells, {report.scenario_count} scenarios",
        ["metric", "value"],
    )
    table.add_row("scenarios/s", scenarios_per_sec)
    table.add_row("unique windows", float(report.unique_windows))
    table.add_row("deduped", float(report.deduped))
    table.add_row("store hit rate", hit_rate)
    print()
    print(table.render())

    benchmark.extra_info["scenarios"] = report.scenario_count
    benchmark.extra_info["scenarios_per_sec"] = round(scenarios_per_sec, 2)
    benchmark.extra_info["unique_windows"] = report.unique_windows
    benchmark.extra_info["store_hit_rate"] = hit_rate

    record = ExperimentRecord(
        "M1", "duplicate abutment windows collapse in the result store"
    )
    record.record("scenarios_per_sec", scenarios_per_sec)
    record.record("store_hit_rate", hit_rate)
    holds = hit_rate > 0.3 and report.scenario_count == len(report.scenarios)
    record.conclude(holds)
    print(record.render())
    assert holds
