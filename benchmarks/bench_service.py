"""S1 (service) — daemon latency and store reuse under edit churn.

The service's claim is steady-state economics: with the layout resident,
the pool warm, and the result store shared, "verify the cell I just
edited" should cost the dirty tiles, not the chip.  This bench drives a
multi-client churn loop against one :class:`VerificationService` — edit
one wire in one tile, rewrite the GDSII, resubmit from a rotating
client — and measures per-request latency (p50/p99) and the store hit
rate across the edits.

Expected shape: every post-edit rescan recomputes only the edited
tile(s); the store hit rate on an 8x8-tile block stays well above 0.8,
and p50 latency sits far below the cold first scan.
"""

from __future__ import annotations

from repro.analysis import ExperimentRecord, Table
from repro.gdsii import write_gds
from repro.geometry import Rect
from repro.layout import Layer, Layout
from repro.service import JobState, ServiceClient, VerificationService

from conftest import run_once

TILE_NM = 2000
GRID = 8  # 8x8 tile grid
CLIENTS = 3
ROUNDS = 8

M1 = Layer(10, 0, "M1")
WIRE_W = 120


def _build_layout(edit_round: int) -> Layout:
    """A GRIDxGRID-tile block of tile-local wires, plus one extra wire
    whose position encodes ``edit_round`` — geometry stays >= 400 nm
    from every tile boundary so an edit dirties exactly one tile window.
    """
    lib = Layout("CHURN")
    cell = lib.new_cell("TOP")
    for ty in range(GRID):
        for tx in range(GRID):
            x0 = tx * TILE_NM + 400
            y0 = ty * TILE_NM + 400
            for i in range(3):
                y = y0 + i * 400
                cell.add_rect(M1, Rect(x0, y, x0 + 1000, y + WIRE_W))
    if edit_round:
        tx = edit_round % GRID
        ty = (edit_round * 3) % GRID
        x0 = tx * TILE_NM + 400
        y = ty * TILE_NM + 1600 + (edit_round % 4) * 40
        cell.add_rect(M1, Rect(x0, y, x0 + 800, y + WIRE_W))
    return lib


def _experiment(service: VerificationService, gds: str):
    clients = [ServiceClient(service, client=f"user{i}") for i in range(CLIENTS)]
    warm = clients[0].run("scan", {"gds": gds, "tile": TILE_NM})
    assert warm.state is JobState.DONE
    cold_ms = (warm.wait_s + warm.service_s) * 1000.0
    latencies, hit_rates = [], []
    for round_no in range(1, ROUNDS + 1):
        write_gds(_build_layout(round_no), gds)
        job = clients[round_no % CLIENTS].run("scan", {"gds": gds, "tile": TILE_NM})
        assert job.state is JobState.DONE
        latencies.append((job.wait_s + job.service_s) * 1000.0)
        hit_rates.append(job.result["tiles_cached"] / job.result["tiles"])
    return warm.result["tiles"], cold_ms, latencies, hit_rates


def test_s1_service_churn(benchmark, obs_registry, tmp_path):
    gds = str(tmp_path / "churn.gds")
    write_gds(_build_layout(0), gds)
    service = VerificationService(jobs=1)
    try:
        tiles, cold_ms, latencies, hit_rates = run_once(
            benchmark, lambda: _experiment(service, gds)
        )
        metrics = service.metrics()
    finally:
        service.close()

    table = Table(
        f"S1: {ROUNDS} one-tile edits, {CLIENTS} clients, {tiles} tiles",
        ["round", "latency ms", "store hit rate"],
    )
    for i, (ms, rate) in enumerate(zip(latencies, hit_rates), start=1):
        table.add_row(str(i), ms, rate)
    print()
    print(table.render())

    churn_hit_rate = sum(hit_rates) / len(hit_rates)
    p50 = metrics["latency_ms"]["p50"]
    p99 = metrics["latency_ms"]["p99"]
    benchmark.extra_info["tiles"] = tiles
    benchmark.extra_info["cold_ms"] = round(cold_ms, 3)
    benchmark.extra_info["p50_ms"] = p50
    benchmark.extra_info["p99_ms"] = p99
    benchmark.extra_info["store_hit_rate"] = round(churn_hit_rate, 4)
    benchmark.extra_info["store_lifetime_hit_rate"] = metrics["store"]["hit_rate"]

    record = ExperimentRecord(
        "S1", "resident service recomputes only the edited tile"
    )
    record.record("store_hit_rate", churn_hit_rate)
    record.record("p50_ms", p50)
    record.record("p99_ms", p99)
    holds = churn_hit_rate > 0.8 and metrics["jobs"]["failed"] == 0
    record.conclude(holds)
    print(record.render())
    assert holds
