"""F7 — hotspot classification: clustering compression and cross-design
pattern recall.

Find litho hotspots on one design, cluster their snippets, build a
pattern library from every member of the discovered classes, and measure
how much of a *different* (same-style) design's hotspot population the
library flags.

Expected shape: the cluster count is much smaller than the hotspot count
(the classes are few), and the library carries over to the unseen design
with high recall — the mechanism that lets yield learning move from test
chips to products.
"""

from repro.analysis import ExperimentRecord, Table
from repro.designgen import LogicBlockSpec, generate_logic_block
from repro.geometry import Rect
from repro.litho import LithoModel, find_hotspots
from repro.patterns import PatternMatcher, cluster_snippets, extract_snippets

from conftest import run_once

RADIUS = 120


def _hotspot_anchors(tech, block):
    model = LithoModel(tech.litho)
    bb = block.top.bbox
    m1 = block.top.region(tech.layers.metal1)
    hotspots = find_hotspots(
        model, m1, Rect(bb.x0, bb.y0, bb.x1, bb.y1), pinch_limit=tech.metal_width // 2
    )
    return [h.marker.center for h in hotspots]


def _experiment(tech, stdlib):
    train = generate_logic_block(
        tech, LogicBlockSpec(rows=2, row_width_nm=6000, net_count=8, seed=21, weak_spots=8), stdlib
    )
    test = generate_logic_block(
        tech, LogicBlockSpec(rows=2, row_width_nm=6000, net_count=8, seed=22, weak_spots=8), stdlib
    )
    L = tech.layers

    train_anchors = _hotspot_anchors(tech, train)
    train_snippets = extract_snippets(train.top, [L.metal1], train_anchors, RADIUS)
    clusters = cluster_snippets(train_snippets, threshold=0.6)

    matcher = PatternMatcher(radius=RADIUS)
    for snippet in train_snippets:
        matcher.add_snippet(snippet)

    test_anchors = _hotspot_anchors(tech, test)
    matches = matcher.scan(test.top, [L.metal1], test_anchors)
    recall = len({m.anchor for m in matches}) / max(len(test_anchors), 1)
    return len(train_anchors), len(clusters), len(test_anchors), recall


def test_f7_hotspot_clustering(benchmark, tech45, stdlib45):
    n_train, n_clusters, n_test, recall = run_once(
        benchmark, lambda: _experiment(tech45, stdlib45)
    )

    table = Table("F7: hotspot clustering and cross-design recall", ["metric", "value"])
    table.add_row("training hotspots", float(n_train))
    table.add_row("clusters (classes)", float(n_clusters))
    table.add_row("compression ratio", n_train / max(n_clusters, 1))
    table.add_row("unseen-design hotspots", float(n_test))
    table.add_row("library recall on unseen design", recall)
    print()
    print(table.render())

    record = ExperimentRecord(
        "F7", "few hotspot classes; the library generalizes to unseen same-style designs"
    )
    record.record("compression", n_train / max(n_clusters, 1))
    record.record("recall", recall)
    holds = n_clusters * 3 <= n_train and recall > 0.7
    record.conclude(holds)
    print(record.render())
    assert holds
