"""A3 (ablation/validation) — tiled full-chip scanning.

The full-chip scan must report the same hotspot population regardless of
the tiling, and its cost must track simulated area.  On top of the
tiling sweep, this bench tracks the parallel + incremental engine: a
``jobs=4`` scan must return the identical population at a wall-clock
speedup that scales with available cores, and an unedited re-scan
against a warm tile cache must re-simulate zero tiles.

Expected shape: tile sizes 2, 3, and 6 um agree on the hotspot count to
within seam-merge jitter (a couple of markers), runtime per simulated
area stays flat, and the incremental row shows a 100% hit rate.  The
``parallel_speedup_x4`` / ``incremental_hit_rate`` values land in the
benchmark JSON (``extra_info``) so the perf trajectory is tracked in
``BENCH_*.json`` across PRs.
"""

import os
import time

from repro.analysis import ExperimentRecord, Table
from repro.litho import LithoModel, scan_full_chip
from repro.parallel import TileCache

from conftest import run_once


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _experiment(tech, block):
    model = LithoModel(tech.litho)
    m1 = block.top.region(tech.layers.metal1)
    rows = []
    for tile in (6000, 3000, 2000):
        t0 = time.perf_counter()
        report = scan_full_chip(
            model, m1, tile_nm=tile, pinch_limit=tech.metal_width // 2
        )
        rows.append((f"serial {tile}", report, time.perf_counter() - t0))

    # parallel fan-out at the 6000 nm tiling
    t0 = time.perf_counter()
    par = scan_full_chip(
        model, m1, tile_nm=6000, pinch_limit=tech.metal_width // 2, jobs=4
    )
    rows.append(("jobs=4 6000", par, time.perf_counter() - t0))

    # incremental: cold fill, then an unedited re-scan (must be all hits)
    cache = TileCache()
    t0 = time.perf_counter()
    cold = scan_full_chip(
        model, m1, tile_nm=6000, pinch_limit=tech.metal_width // 2, cache=cache
    )
    rows.append(("incr cold 6000", cold, time.perf_counter() - t0))
    t0 = time.perf_counter()
    warm = scan_full_chip(
        model, m1, tile_nm=6000, pinch_limit=tech.metal_width // 2, cache=cache
    )
    rows.append(("incr warm 6000", warm, time.perf_counter() - t0))
    return rows


def test_a3_fullchip_tiling(benchmark, tech45, bench_block, obs_registry):
    rows = run_once(benchmark, lambda: _experiment(tech45, bench_block))

    table = Table(
        "A3: full-chip scan vs tile size / engine mode",
        ["mode", "tiles", "hotspots", "time (s)"],
    )
    for mode, report, seconds in rows:
        table.add_row(mode, float(report.tiles), float(len(report.hotspots)), seconds)
    print()
    print(table.render())

    by_mode = {mode: (report, seconds) for mode, report, seconds in rows}
    serial_report, serial_s = by_mode["serial 6000"]
    par_report, par_s = by_mode["jobs=4 6000"]
    warm_report, _ = by_mode["incr warm 6000"]

    counts = [len(report.hotspots) for mode, report, _ in rows if mode.startswith("serial")]
    speedup = serial_s / par_s if par_s > 0 else 0.0
    benchmark.extra_info["parallel_speedup_x4"] = round(speedup, 3)
    benchmark.extra_info["incremental_hit_rate"] = warm_report.cache_hit_rate
    benchmark.extra_info["cpus"] = _cpus()

    record = ExperimentRecord("A3", "hotspot population is tiling-invariant")
    record.record("max_count", max(counts))
    record.record("min_count", min(counts))
    record.record("parallel_speedup_x4", speedup)
    record.record("incremental_hit_rate", warm_report.cache_hit_rate)
    holds = max(counts) - min(counts) <= max(3, int(0.05 * max(counts)))
    record.conclude(holds)
    print(record.render())
    assert holds

    # parallel returns the identical population, not merely the same count
    assert par_report.hotspots == serial_report.hotspots
    # unedited re-scan re-simulates nothing
    assert warm_report.tiles_computed == 0
    assert warm_report.cache_hit_rate == 1.0
    assert warm_report.hotspots == serial_report.hotspots
    # wall-clock speedup needs physical cores to show up
    if _cpus() >= 4:
        assert speedup >= 1.5  # only 2 tiles here; see test_a3p for the fan-out


def test_a3f_fastpath_ablation(benchmark, tech45, stdlib45, obs_registry):
    """Before/after rows for the aerial-image fast path.

    ``fast_path=False`` is the reference engine — whole-chip sweep per
    tile, one independent simulation per corner, pairwise detection and
    merge loops — the "before" of the PR that introduced SimCache
    condition reuse and indexed geometry windowing (the vectorized
    rasterizer serves both engines, so the old-code baseline was slower
    still).  Both engines must report the identical hotspot population;
    the speedup, the raster-reuse rate, and the per-tile cache-key cost
    land in ``extra_info`` so ``BENCH_*.json`` tracks the fast path
    across PRs.  The block is the wide a3p one: geometry windowing only
    shows its O(chip) -> O(tile) win when the chip is many tiles wide.
    """
    from repro.designgen import LogicBlockSpec, generate_logic_block
    from repro.geometry import GridIndex, Rect
    from repro.litho import ProcessWindow
    from repro.litho.fullchip import _ScanGeometry, _ScanPayload, _scan_params, _tile_key
    from repro.parallel import tile_grid

    spec = LogicBlockSpec(rows=3, row_width_nm=26000, net_count=24, seed=7, weak_spots=16)
    block = generate_logic_block(tech45, spec, stdlib45)
    model = LithoModel(tech45.litho)
    m1 = block.top.region(tech45.layers.metal1)
    limit = tech45.metal_width // 2

    def _run():
        t0 = time.perf_counter()
        legacy = scan_full_chip(
            model, m1, tile_nm=6000, pinch_limit=limit, fast_path=False
        )
        t_legacy = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = scan_full_chip(
            model, m1, tile_nm=6000, pinch_limit=limit, fast_path=True
        )
        t_fast = time.perf_counter() - t0

        # cache-key cost: digesting every tile's influence clip from the
        # whole-chip region (legacy, O(chip) per tile) vs from the
        # spatial index (O(local)) — this is the entire per-tile cost of
        # a warm incremental re-scan, measured at a fine 2000 nm tiling
        # where a production scan has many tiles
        process = ProcessWindow()
        g = model.settings.grid_nm
        halo = max(model.halo_nm(c.defocus_nm) for c in process.corners())
        halo = -(-halo // g) * g
        pay_fast = _ScanPayload(
            model, _ScanGeometry(m1), None, process, limit, None, halo, True
        )
        pay_legacy = _ScanPayload(model, m1, None, process, limit, None, halo, False)
        params = _scan_params(pay_fast, limit, None)
        tiles = tile_grid(m1.bbox, 2000, 200)
        pay_fast.drawn.near(m1.bbox)  # build the index outside the timer
        t_key_legacy = t_key_fast = float("inf")
        keys_legacy: list = []
        keys_fast: list = []
        for _ in range(5):  # min-of-5: the keys take milliseconds
            t0 = time.perf_counter()
            keys_legacy = [_tile_key(pay_legacy, t, params, halo) for t in tiles]
            t_key_legacy = min(t_key_legacy, time.perf_counter() - t0)
            t0 = time.perf_counter()
            keys_fast = [_tile_key(pay_fast, t, params, halo) for t in tiles]
            t_key_fast = min(t_key_fast, time.perf_counter() - t0)
        assert keys_fast == keys_legacy  # caches stay interchangeable

        # micro-bench: allocation-free query_into vs allocating query on
        # the scan's own geometry and tiling
        index: GridIndex[Rect] = GridIndex(cell_size=2048)
        for r in m1.rects():
            index.insert(r, r)
        windows = [t.window.expanded(halo) for t in tiles] * 200
        buf: list[Rect] = []
        t0 = time.perf_counter()
        for w in windows:
            index.query(w)
        t_query = time.perf_counter() - t0
        t0 = time.perf_counter()
        for w in windows:
            index.query_into(w, buf)
        t_query_into = time.perf_counter() - t0

        return (
            legacy, t_legacy, fast, t_fast,
            t_key_legacy, t_key_fast, t_query, t_query_into, len(tiles),
        )

    (
        legacy, t_legacy, fast, t_fast,
        t_key_legacy, t_key_fast, t_query, t_query_into, n_tiles,
    ) = run_once(benchmark, _run)

    table = Table(
        "A3f: fast path before/after, 6000 nm tiling",
        ["engine", "tiles", "hotspots", "time (s)", "tiles/s"],
    )
    table.add_row("legacy", float(legacy.tiles), float(len(legacy.hotspots)), t_legacy,
                  legacy.tiles / t_legacy if t_legacy > 0 else 0.0)
    table.add_row("fast", float(fast.tiles), float(len(fast.hotspots)), t_fast,
                  fast.tiles / t_fast if t_fast > 0 else 0.0)
    print()
    print(table.render())

    counters = obs_registry.snapshot()["counters"]
    reuse = counters.get("sim.raster_reuse", 0)
    # the fast engine rasterizes once per simulated tile and touches the
    # raster once per unique blur sigma (two here: defocus 0 and 80 nm),
    # so every second access is a reuse hit
    reuse_rate = reuse / max(reuse + fast.tiles_computed, 1)
    speedup = t_legacy / t_fast if t_fast > 0 else 0.0

    benchmark.extra_info["fastpath_speedup"] = round(speedup, 3)
    benchmark.extra_info["tiles_per_s_legacy"] = round(legacy.tiles / t_legacy, 3)
    benchmark.extra_info["tiles_per_s_fast"] = round(fast.tiles / t_fast, 3)
    benchmark.extra_info["raster_reuse_rate"] = round(reuse_rate, 4)
    benchmark.extra_info["tile_key_s_legacy"] = round(t_key_legacy, 6)
    benchmark.extra_info["tile_key_s_indexed"] = round(t_key_fast, 6)
    benchmark.extra_info["query_into_speedup"] = round(
        t_query / t_query_into if t_query_into > 0 else 0.0, 3
    )

    record = ExperimentRecord("A3f", "fast path is faster and bit-identical")
    record.record("speedup", speedup)
    record.record("raster_reuse_rate", reuse_rate)
    record.record("tile_key_speedup", t_key_legacy / t_key_fast if t_key_fast > 0 else 0.0)
    record.record("query_into_speedup", t_query / t_query_into if t_query_into > 0 else 0.0)
    identical = fast.hotspots == legacy.hotspots
    record.conclude(identical and speedup >= 2.0)
    print(record.render())

    assert identical
    assert speedup >= 2.0  # the PR's acceptance floor, single-job
    assert reuse_rate >= 0.5  # 2 unique sigmas -> 1 raster + 1 reuse per tile


def test_a3z_payload_bytes(benchmark, tech45, stdlib45, obs_registry):
    """Payload bytes vs chip size: the zero-copy acceptance row.

    The shared-memory transport ships only a ``(block name, offsets,
    params)`` handle per worker, so ``pool.payload_bytes`` must stay
    ~constant as the chip grows (the acceptance bar: within 2x of the
    smallest chip while area grows >= 4x), where the pickled path grows
    linearly with the rect count.  Both engines must report identical
    hotspot populations at every scale.
    """
    from repro.designgen import LogicBlockSpec, generate_logic_block
    from repro.obs import names
    from repro.parallel.shm import ENV_DISABLE

    model = LithoModel(tech45.litho)
    limit = tech45.metal_width // 2
    scales = {
        "x1": LogicBlockSpec(rows=1, row_width_nm=13000, net_count=12, seed=7, weak_spots=6),
        "x2": LogicBlockSpec(rows=1, row_width_nm=26000, net_count=12, seed=7, weak_spots=6),
        "x4": LogicBlockSpec(rows=1, row_width_nm=54000, net_count=12, seed=7, weak_spots=6),
    }

    def _run():
        bytes_by_mode: dict = {}
        areas: dict = {}
        for label, spec in scales.items():
            block = generate_logic_block(tech45, spec, stdlib45)
            m1 = block.top.region(tech45.layers.metal1)
            areas[label] = m1.bbox.area
            kwargs = dict(tile_nm=6000, pinch_limit=limit, jobs=2)
            shm_report = scan_full_chip(model, m1, **kwargs)
            bytes_by_mode[f"shm_{label}"] = obs_registry.gauge_value(
                names.POOL_PAYLOAD_BYTES
            )
            os.environ[ENV_DISABLE] = "1"
            try:
                pickled_report = scan_full_chip(model, m1, **kwargs)
            finally:
                del os.environ[ENV_DISABLE]
            bytes_by_mode[f"pickled_{label}"] = obs_registry.gauge_value(
                names.POOL_PAYLOAD_BYTES
            )
            assert shm_report.hotspots == pickled_report.hotspots
        return bytes_by_mode, areas

    bytes_by_mode, areas = run_once(benchmark, _run)

    table = Table(
        "A3z: per-worker payload bytes vs chip size, jobs=2",
        ["chip", "area (um^2)", "shm bytes", "pickled bytes"],
    )
    for label in scales:
        table.add_row(
            label,
            areas[label] / 1e6,
            bytes_by_mode[f"shm_{label}"],
            bytes_by_mode[f"pickled_{label}"],
        )
    print()
    print(table.render())

    benchmark.extra_info["payload_bytes"] = {
        key: float(value) for key, value in bytes_by_mode.items()
    }

    record = ExperimentRecord("A3z", "shm payload stays flat as the chip grows")
    record.record("area_growth", areas["x4"] / areas["x1"])
    record.record("shm_growth", bytes_by_mode["shm_x4"] / bytes_by_mode["shm_x1"])
    record.record(
        "pickled_growth",
        bytes_by_mode["pickled_x4"] / bytes_by_mode["pickled_x1"],
    )
    flat = bytes_by_mode["shm_x4"] <= 2 * bytes_by_mode["shm_x1"]
    record.conclude(flat)
    print(record.render())

    # the chip really grows >= 4x while the shm payload stays within 2x
    assert areas["x4"] >= 4 * areas["x1"]
    assert flat
    # the pickled path is the linear-growth baseline being replaced
    assert bytes_by_mode["pickled_x4"] > 2 * bytes_by_mode["pickled_x1"]
    assert bytes_by_mode["shm_x1"] < bytes_by_mode["pickled_x1"]


def test_a4_out_of_core_rss(benchmark, tech45, tmp_path):
    """A4 — out-of-core substrate: peak RSS and payload bytes vs chip area.

    The acceptance row for the layout store: scanning a fixed window of
    a growing SRAM array, the in-RAM path (parse + flatten the whole
    chip to build the drawn region) grows its peak RSS ~linearly with
    chip area, while the store-backed path (mmap the ingested store,
    window the rects per tile) grows sublinearly — and its per-worker
    payload stays ~constant because workers receive a ``(path, offset,
    count)`` handle instead of geometry.  Both paths must print the
    identical scan summary at every scale.

    ``ru_maxrss`` is a per-process high-water mark, so each (scale,
    mode) runs as its own CLI subprocess and reports through its
    ``--metrics-out`` manifest.
    """
    import json
    import subprocess
    import sys

    from repro.designgen.arrays import generate_sram_array
    from repro.gdsii import write_gds

    scales = {"x1": (128, 128), "x2": (128, 256), "x4": (256, 256)}
    extent = "0,0,6000,6000"

    def _scan(gds, out, store=None):
        cmd = [sys.executable, "-m", "repro", "scan", gds,
               "--extent", extent, "--jobs", "2", "--limit", "0",
               "--no-fail", "--metrics-out", out]
        if store is not None:
            cmd += ["--store", store]
        proc = subprocess.run(
            cmd, check=True, capture_output=True, text=True
        )
        gauges = json.loads(open(out).read())["gauges"]
        return proc.stdout.splitlines()[0], gauges

    def _run():
        rss: dict = {}
        payload: dict = {}
        area: dict = {}
        for label, (rows, cols) in scales.items():
            lib = generate_sram_array(tech45, rows=rows, cols=cols)
            area[label] = lib.top_cell().bbox.area
            gds = str(tmp_path / f"sram_{label}.gds")
            write_gds(lib, gds)
            store = str(tmp_path / f"sram_{label}.lstore")
            subprocess.run(
                [sys.executable, "-m", "repro", "ingest", gds, "--out", store],
                check=True, capture_output=True,
            )
            ram_summary, ram = _scan(gds, str(tmp_path / f"ram_{label}.json"))
            store_summary, stored = _scan(
                gds, str(tmp_path / f"store_{label}.json"), store=store
            )
            assert store_summary == ram_summary  # identical populations
            rss[f"ram_{label}"] = ram["run.peak_rss_bytes"]
            rss[f"store_{label}"] = stored["run.peak_rss_bytes"]
            payload[f"ram_{label}"] = ram["pool.payload_bytes"]
            payload[f"store_{label}"] = stored["pool.payload_bytes"]
        return rss, payload, area

    rss, payload, area = run_once(benchmark, _run)

    table = Table(
        "A4: fixed-window scan of a growing chip, jobs=2",
        ["chip", "area (um^2)", "ram RSS (MB)", "store RSS (MB)", "store payload (B)"],
    )
    for label in scales:
        table.add_row(
            label,
            area[label] / 1e6,
            rss[f"ram_{label}"] / 1e6,
            rss[f"store_{label}"] / 1e6,
            payload[f"store_{label}"],
        )
    print()
    print(table.render())

    ram_growth = rss["ram_x4"] / rss["ram_x1"]
    store_growth = rss["store_x4"] / rss["store_x1"]
    benchmark.extra_info["rss_bytes"] = {k: float(v) for k, v in rss.items()}
    benchmark.extra_info["payload_bytes"] = {k: float(v) for k, v in payload.items()}
    benchmark.extra_info["ram_rss_growth_x4"] = round(ram_growth, 3)
    benchmark.extra_info["store_rss_growth_x4"] = round(store_growth, 3)

    record = ExperimentRecord("A4", "store scan RSS is sublinear in chip area")
    record.record("area_growth", area["x4"] / area["x1"])
    record.record("ram_rss_growth", ram_growth)
    record.record("store_rss_growth", store_growth)
    record.record("store_rss_over_ram_x4", rss["store_x4"] / rss["ram_x4"])
    holds = (
        store_growth < ram_growth
        and rss["store_x4"] < 0.5 * rss["ram_x4"]
        and payload["store_x4"] <= 2 * payload["store_x1"]
    )
    record.conclude(holds)
    print(record.render())

    # the chip really grows 4x while the store handle payload stays put
    assert area["x4"] >= 4 * area["x1"]
    assert payload["store_x4"] <= 2 * payload["store_x1"]
    # the out-of-core acceptance bar: sublinear growth, < half the
    # in-RAM peak at the largest chip
    assert store_growth < ram_growth
    assert rss["store_x4"] < 0.5 * rss["ram_x4"]


def test_a3p_parallel_speedup(benchmark, tech45, stdlib45):
    """Parallel speedup on a block wide enough to fill a 4-worker pool
    at the 6000 nm tiling (the acceptance row for the parallel engine)."""
    from repro.designgen import LogicBlockSpec, generate_logic_block

    spec = LogicBlockSpec(rows=3, row_width_nm=26000, net_count=24, seed=7, weak_spots=16)
    block = generate_logic_block(tech45, spec, stdlib45)
    model = LithoModel(tech45.litho)
    m1 = block.top.region(tech45.layers.metal1)
    limit = tech45.metal_width // 2

    def _run():
        t0 = time.perf_counter()
        serial = scan_full_chip(model, m1, tile_nm=6000, pinch_limit=limit, jobs=1)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = scan_full_chip(model, m1, tile_nm=6000, pinch_limit=limit, jobs=4)
        t_parallel = time.perf_counter() - t0
        return serial, t_serial, parallel, t_parallel

    serial, t_serial, parallel, t_parallel = run_once(benchmark, _run)

    table = Table("A3p: parallel speedup, 6000 nm tiling", ["mode", "tiles", "hotspots", "time (s)"])
    table.add_row("jobs=1", float(serial.tiles), float(len(serial.hotspots)), t_serial)
    table.add_row("jobs=4", float(parallel.tiles), float(len(parallel.hotspots)), t_parallel)
    print()
    print(table.render())

    speedup = t_serial / t_parallel if t_parallel > 0 else 0.0
    benchmark.extra_info["parallel_speedup_x4"] = round(speedup, 3)
    benchmark.extra_info["tiles"] = serial.tiles
    benchmark.extra_info["cpus"] = _cpus()

    record = ExperimentRecord("A3p", "jobs=4 scan is identical and faster")
    record.record("speedup", speedup)
    record.record("tiles", serial.tiles)
    record.record("cpus", _cpus())
    identical = parallel.hotspots == serial.hotspots
    record.conclude(identical and (speedup >= 2.0 or _cpus() < 4))
    print(record.render())

    assert identical
    if _cpus() >= 4:
        assert speedup >= 2.0
