"""A3 (ablation/validation) — tiled full-chip scanning.

The full-chip scan must report the same hotspot population regardless of
the tiling, and its cost must track simulated area.

Expected shape: tile sizes 2, 3, and 6 um agree on the hotspot count to
within seam-merge jitter (a couple of markers), and runtime per simulated
area stays flat.
"""

import time

from repro.analysis import ExperimentRecord, Table
from repro.litho import LithoModel, scan_full_chip

from conftest import run_once


def _experiment(tech, block):
    model = LithoModel(tech.litho)
    m1 = block.top.region(tech.layers.metal1)
    rows = []
    for tile in (6000, 3000, 2000):
        t0 = time.perf_counter()
        report = scan_full_chip(
            model, m1, tile_nm=tile, pinch_limit=tech.metal_width // 2
        )
        rows.append((tile, report, time.perf_counter() - t0))
    return rows


def test_a3_fullchip_tiling(benchmark, tech45, bench_block):
    rows = run_once(benchmark, lambda: _experiment(tech45, bench_block))

    table = Table(
        "A3: full-chip scan vs tile size",
        ["tile (nm)", "tiles", "hotspots", "time (s)"],
    )
    for tile, report, seconds in rows:
        table.add_row(float(tile), float(report.tiles), float(len(report.hotspots)), seconds)
    print()
    print(table.render())

    counts = [len(report.hotspots) for _, report, _ in rows]
    record = ExperimentRecord("A3", "hotspot population is tiling-invariant")
    record.record("max_count", max(counts))
    record.record("min_count", min(counts))
    holds = max(counts) - min(counts) <= max(3, int(0.05 * max(counts)))
    record.conclude(holds)
    print(record.render())
    assert holds
