"""T4 — timing impact of post-OPC (litho-extracted) channel lengths.

The post-OPC timing methodology: simulate the printed poly over active for
gates in different layout contexts (dense core vs isolated edge-of-block),
extract the drive-equivalent channel length per gate, back-annotate the
candidate critical paths, and compare against drawn-CD timing.

Expected shape: litho CDs shift path delays by several percent, enough to
reorder near-critical paths and move the worst slack (the original work
reported a 36.4% worst-case-slack increase; our scalar model lands in the
same double-digit-percent regime on the iso-heavy path).
"""

from repro.analysis import ExperimentRecord, Table
from repro.geometry import Rect, Region
from repro.litho import LithoModel
from repro.timing import (
    Stage,
    TimingPath,
    compare_paths,
    equivalent_length_drive,
    slice_gate,
)

from conftest import run_once


def _printed_gate_length(tech, model, dense: bool, dose: float = 1.0, defocus: float = 0.0) -> float:
    """Litho-extracted drive length of a poly gate in context."""
    n = tech.node_nm
    poly_w = tech.poly_width
    pitch = tech.poly_pitch
    # active clipped to the victim gate so neighbours only contribute
    # optically, not to the extraction
    active = Region(Rect(-pitch // 3, 0, poly_w + pitch // 3, 4 * n))
    lines = [Rect(0, -100, poly_w, 4 * n + 100)]
    if dense:
        for k in (1, 2):
            lines.append(Rect(k * pitch, -100, k * pitch + poly_w, 4 * n + 100))
            lines.append(Rect(-k * pitch, -100, -k * pitch + poly_w, 4 * n + 100))
    drawn = Region(lines)
    window = Rect(-300, -150, 300 + poly_w, 4 * n + 150)
    printed = model.print_contour(drawn, window, dose=dose, defocus_nm=defocus, grid=2)
    gate = slice_gate(printed, active, vertical_poly=True, strip_nm=4)
    return equivalent_length_drive(gate)


def _experiment(tech):
    model = LithoModel(tech.litho)
    l_drawn = float(tech.poly_width)
    # setup timing cares about the slow-litho corner (over-dose, defocus:
    # channels print long); the dense/iso proximity split appears there
    l_dense = _printed_gate_length(tech, model, dense=True, dose=1.05, defocus=80.0)
    l_iso = _printed_gate_length(tech, model, dense=False, dose=1.05, defocus=80.0)

    # six candidate paths mixing dense-context and iso-context gates.
    # Dense-heavy paths get slightly longer wires so the drawn analysis
    # ranks them slowest — litho annotation then speeds the dense gates
    # and slows the iso ones, flipping near-critical orderings.
    paths = []
    annotations = {}
    mixes = [(8, 0), (6, 2), (4, 4), (2, 6), (0, 8), (5, 0)]
    for k, (n_dense, n_iso) in enumerate(mixes):
        wire = 350 + 8 * n_dense
        stages = []
        lengths = {}
        for g in range(n_dense):
            name = f"p{k}d{g}"
            stages.append(Stage(name, 180, l_drawn, wire_length_nm=wire))
            lengths[name] = l_dense
        for g in range(n_iso):
            name = f"p{k}i{g}"
            stages.append(Stage(name, 180, l_drawn, wire_length_nm=wire))
            lengths[name] = l_iso
        paths.append(TimingPath(f"path{k}", stages))
        annotations[f"path{k}"] = lengths
    return l_drawn, l_dense, l_iso, compare_paths(paths, annotations)


def test_t4_timing(benchmark, tech45):
    l_drawn, l_dense, l_iso, comparison = run_once(benchmark, lambda: _experiment(tech45))

    # slack against a clock set 5% above the drawn critical path — the
    # sign-off margin regime where small delay shifts become large slack
    # shifts (how 36%-style numbers arise)
    clock = 1.05 * comparison.worst_drawn
    slack_drawn = clock - comparison.worst_drawn
    slack_annotated = clock - comparison.worst_annotated
    slack_shift_pct = 100 * (slack_annotated - slack_drawn) / slack_drawn

    table = Table("T4: drawn vs litho-annotated path delays (slow litho corner)",
                  ["path", "drawn (ps)", "annotated (ps)", "shift %"])
    for name, d, a in zip(comparison.names, comparison.drawn_ps, comparison.annotated_ps):
        table.add_row(name, d, a, 100 * (a - d) / d)
    print()
    print(f"channel lengths: drawn {l_drawn:.1f}, dense-context {l_dense:.1f}, "
          f"iso-context {l_iso:.1f} nm")
    print(table.render())
    print(comparison.summary())
    print(f"worst slack vs {clock:.2f} ps clock: {slack_drawn:.2f} -> "
          f"{slack_annotated:.2f} ps ({slack_shift_pct:+.1f}%)")

    record = ExperimentRecord(
        "T4", "litho CDs split by context, reorder paths, and move worst slack by tens of %"
    )
    record.record("l_dense_nm", l_dense)
    record.record("l_iso_nm", l_iso)
    record.record("order_flips", comparison.reorder_count())
    record.record("worst_slack_shift_percent", slack_shift_pct)
    holds = (
        abs(l_iso - l_dense) >= 1.0
        and comparison.reorder_count() >= 1
        and abs(slack_shift_pct) > 10.0
    )
    record.conclude(holds)
    print(record.render())
    assert holds
