"""F4 — DPT readiness vs pitch scaling.

Decompose a brick-wall metal pattern at shrinking pitch with a fixed
same-mask spacing limit (what the illumination can resolve on one mask).

Expected shape: at relaxed pitch the layout is trivially decomposable
(no conflict edges); as pitch shrinks below the same-mask limit the
conflict graph densifies — stitches appear, then genuinely unfixable
odd cycles — and the DPT score degrades monotonically-ish.
"""

from repro.analysis import ExperimentRecord, Table
from repro.designgen import dpt_torture
from repro.dpt import build_conflict_graph, decompose_with_stitches, score_decomposition

from conftest import run_once

SAME_MASK_SPACE = 100  # nm: single-exposure spacing resolution on one mask


def _experiment():
    rows = []
    for pitch in (260, 220, 180, 140, 100, 80, 60):
        width = pitch // 2
        layout = dpt_torture(pitch, width, rows=8)
        graph = build_conflict_graph(layout, SAME_MASK_SPACE)
        result, stitches = decompose_with_stitches(layout, SAME_MASK_SPACE)
        score = score_decomposition(result, stitches)
        rows.append(
            (
                pitch,
                graph.num_conflict_edges,
                len(stitches),
                result.num_conflicts,
                score.composite,
            )
        )
    return rows


def test_f4_dpt_pitch_scaling(benchmark):
    rows = run_once(benchmark, _experiment)

    table = Table(
        "F4: DPT decomposition vs pitch (same-mask space 100 nm)",
        ["pitch", "conflict edges", "stitches", "odd cycles left", "score"],
    )
    for pitch, edges, stitches, conflicts, score in rows:
        table.add_row(float(pitch), float(edges), float(stitches), float(conflicts), score)
    print()
    print(table.render())

    record = ExperimentRecord(
        "F4", "conflicts appear and scores fall as pitch shrinks below the mask limit"
    )
    edges = [r[1] for r in rows]
    scores = [r[4] for r in rows]
    record.record("edges_at_relaxed_pitch", edges[0])
    record.record("edges_at_tight_pitch", edges[-1])
    record.record("score_at_relaxed_pitch", scores[0])
    record.record("score_at_tight_pitch", scores[-1])
    trouble = [r[2] + r[3] for r in rows]  # stitches + unfixable cycles
    holds = (
        edges[0] == 0
        and edges[-1] > 0
        and scores[-1] < scores[0]
        and trouble[-1] > trouble[0]
    )
    record.conclude(holds)
    print(record.render())
    assert holds
