"""A5 (extension) — statistical timing vs corner signoff.

Corner timing assigns every gate the worst litho CD simultaneously;
statistically, independent per-gate variation concentrates the path
delay.  This bench samples per-gate channel lengths (sigma from the
litho CD distribution) and measures how much margin the all-worst corner
wastes relative to the sampled 99.9th percentile.

Expected shape: corner margin grows with path depth (the root-N
concentration argument) and is double-digit percent at realistic depths.
"""

from repro.analysis import ExperimentRecord, Table
from repro.timing import Stage, TimingPath
from repro.variation import statistical_path_delays

from conftest import run_once

LENGTH_SIGMA_NM = 5.0 / 3.0  # 3-sigma = 5 nm litho CD variation
WORST_LENGTH_NM = 40.0       # the slow-corner channel (drawn 35 + 5)


def _experiment():
    rows = []
    for depth in (4, 8, 16, 32):
        path = TimingPath(
            f"d{depth}",
            [Stage(f"g{i}", 180, 35.0, wire_length_nm=300) for i in range(depth)],
        )
        result = statistical_path_delays(
            path, LENGTH_SIGMA_NM, WORST_LENGTH_NM, n_samples=600, seed=depth
        )
        rows.append((depth, result))
    return rows


def test_a5_statistical_timing(benchmark):
    rows = run_once(benchmark, _experiment)

    table = Table(
        "A5: corner vs statistical path delay (per-gate sigma 1.67 nm)",
        ["depth", "nominal (ps)", "corner (ps)", "p99.9 (ps)", "corner margin %"],
    )
    for depth, result in rows:
        table.add_row(
            float(depth),
            result.nominal_ps,
            result.corner_ps,
            result.quantile_ps(0.999),
            result.corner_margin_percent,
        )
    print()
    print(table.render())

    margins = [result.corner_margin_percent for _, result in rows]
    record = ExperimentRecord(
        "A5", "corner pessimism is double-digit % and grows with path depth"
    )
    record.record("margin_depth4", margins[0])
    record.record("margin_depth32", margins[-1])
    holds = margins[-1] > margins[0] and margins[-1] > 5.0
    record.conclude(holds)
    print(record.render())
    assert holds
