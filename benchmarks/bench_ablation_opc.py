"""A2 (ablation) — model-OPC knob sensitivity.

Sweeps the two structural knobs DESIGN.md calls out — fragment length and
iteration gain — on the standard elbow structure, reporting converged RMS
EPE and runtime.

Expected shape: gain has a sweet spot — too low fails to converge within
the iteration budget, too high oscillates; fragment size is secondary on
a simple elbow (sub-nm spread), mattering mainly for complex contexts.
The defaults (gain 0.5, max_len 60) sit on the good part of both curves.
"""

import time

from repro.analysis import ExperimentRecord, Table
from repro.geometry import Rect, Region
from repro.opc import ModelOpcSettings, apply_model_opc

from conftest import run_once


def _elbow(tech):
    w = tech.metal_width
    return Region([Rect(0, 0, w, 900), Rect(0, 900 - w, 600, 900), Rect(0, 1000, w, 1900)])


def _experiment(tech, model):
    drawn = _elbow(tech)
    rows = []
    for max_len in (200, 120, 60, 30):
        settings = ModelOpcSettings(max_len=max_len, corner_len=min(40, max_len), iterations=8, gain=0.5)
        t0 = time.perf_counter()
        result = apply_model_opc(drawn, model, settings=settings)
        rows.append(("frag", max_len, result.final_rms_epe, time.perf_counter() - t0))
    for gain in (0.25, 0.5, 0.8, 1.2):
        settings = ModelOpcSettings(max_len=60, iterations=8, gain=gain)
        t0 = time.perf_counter()
        result = apply_model_opc(drawn, model, settings=settings)
        rows.append(("gain", gain, result.final_rms_epe, time.perf_counter() - t0))
    return rows


def test_a2_opc_knobs(benchmark, tech45, litho45):
    rows = run_once(benchmark, lambda: _experiment(tech45, litho45))

    table = Table("A2: model-OPC knob ablation (elbow structure)",
                  ["knob", "value", "final rms EPE (nm)", "time (s)"])
    for knob, value, epe, seconds in rows:
        table.add_row(knob, float(value), epe, seconds)
    print()
    print(table.render())

    frag = {value: epe for knob, value, epe, _ in rows if knob == "frag"}
    gain = {value: epe for knob, value, epe, _ in rows if knob == "gain"}
    record = ExperimentRecord(
        "A2", "gain has a sweet spot; fragment size is secondary on simple structures"
    )
    record.record("frag_epe_spread", max(frag.values()) - min(frag.values()))
    record.record("epe_gain0.25", gain[0.25])
    record.record("epe_gain0.5", gain[0.5])
    record.record("epe_gain1.2", gain[1.2])
    holds = (
        gain[0.5] < gain[0.25]            # too little gain: not converged
        and gain[0.5] <= gain[1.2]        # too much gain: oscillation
        and max(frag.values()) - min(frag.values()) < 0.5  # frag size secondary
    )
    record.conclude(holds)
    print(record.render())
    assert holds
