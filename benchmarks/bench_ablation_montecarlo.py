"""A1 (ablation) — Monte Carlo validation of the analytic critical-area
model.

The yield engine rests on the analytic critical-area integrals; this
ablation injects tens of thousands of sampled defects and checks the
empirical fault probability against ``weighted_critical_area / extent``
on three structurally different workloads.

Expected shape: agreement within ~10% everywhere (MC noise + the
segment-estimator's junction conservatism).
"""


from repro.analysis import ExperimentRecord, Table
from repro.designgen import comb_structure
from repro.geometry import Rect, Region
from repro.yieldmodels import estimate_fault_probability, weighted_critical_area
from repro.yieldmodels.dsd import DefectSizeDistribution

from conftest import run_once

N_DEFECTS = 20000


def _workloads(tech):
    w, s = tech.metal_width, tech.metal_space
    return {
        "parallel wires": Region([Rect(0, i * (w + s), 4000, i * (w + s) + w) for i in range(10)]),
        "comb (2 nets)": comb_structure(w, s, 10, 2000),
        "sparse pair": Region([Rect(0, 0, 3000, w), Rect(0, 6 * (w + s), 3000, 6 * (w + s) + w)]),
    }


def _experiment(tech):
    dsd = DefectSizeDistribution(tech.defects.x0_nm, tech.defects.max_size_nm)
    rows = []
    for name, region in _workloads(tech).items():
        extent = region.bbox.expanded(500)
        p_mc = estimate_fault_probability(region, dsd, N_DEFECTS, seed=3, extent=extent)
        ca = sum(weighted_critical_area(region, dsd, m, n_sizes=24) for m in ("shorts", "opens"))
        p_analytic = ca / extent.area
        rows.append((name, p_mc, p_analytic))
    return rows


def test_a1_montecarlo_validation(benchmark, tech45):
    rows = run_once(benchmark, lambda: _experiment(tech45))

    table = Table(
        f"A1: Monte Carlo ({N_DEFECTS} defects) vs analytic critical area",
        ["workload", "P(fault) MC", "P(fault) analytic", "ratio"],
    )
    ratios = []
    for name, p_mc, p_analytic in rows:
        ratio = p_mc / p_analytic if p_analytic else float("nan")
        ratios.append(ratio)
        table.add_row(name, p_mc, p_analytic, ratio)
    print()
    print(table.render())

    record = ExperimentRecord("A1", "analytic CA matches Monte Carlo within ~10%")
    record.record("worst_ratio_error", max(abs(r - 1.0) for r in ratios))
    holds = all(abs(r - 1.0) < 0.12 for r in ratios)
    record.conclude(holds)
    print(record.render())
    assert holds
